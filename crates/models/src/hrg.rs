//! Hierarchical random graphs (Clauset, Moore & Newman, Nature 2008) —
//! PrivHRG's model.
//!
//! A *dendrogram* is a rooted binary tree whose leaves are the graph's
//! nodes. Each internal node `r` carries a connection probability
//! `p_r = E_r / (L_r · R_r)`, where `E_r` counts graph edges whose lowest
//! common ancestor is `r` and `L_r`, `R_r` are the leaf counts of its two
//! subtrees. The likelihood of a graph given a dendrogram factorises over
//! internal nodes, and dendrogram space is explored with the standard
//! subtree-swap Markov chain.
//!
//! [`Dendrogram::mcmc_step`] takes a scaling `factor` applied to the
//! log-likelihood difference: `1.0` gives the classic likelihood sampler,
//! while PrivHRG passes `ε₁ / (2 Δ logL)` to target the exponential
//! mechanism's distribution over dendrograms.

use crate::sampling::sample_binomial;
use pgb_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// A child pointer in the dendrogram: either a graph node (leaf) or
/// another internal node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Child {
    /// A leaf, identified by graph node id.
    Leaf(u32),
    /// An internal dendrogram node.
    Internal(u32),
}

/// Sentinel parent id for the root.
const NO_PARENT: u32 = u32::MAX;

/// A binary dendrogram over `n` graph nodes with per-internal-node edge
/// counts maintained incrementally across MCMC moves.
#[derive(Clone, Debug)]
pub struct Dendrogram {
    n: usize,
    left: Vec<Child>,
    right: Vec<Child>,
    /// Parent internal node of each internal node (NO_PARENT for root).
    parent: Vec<u32>,
    /// Parent internal node of each leaf.
    leaf_parent: Vec<u32>,
    /// Number of leaves under each internal node.
    leaves: Vec<u32>,
    /// Edges of the source graph whose LCA is this internal node.
    e: Vec<u64>,
    root: u32,
    /// Timestamped scratch marks for LCA queries (per internal node).
    mark: Vec<u64>,
    /// Timestamped scratch marks for leaf-set membership (per leaf).
    leaf_mark: Vec<u64>,
    stamp: u64,
}

impl Dendrogram {
    /// Builds a random balanced dendrogram over `n` leaves (a uniformly
    /// random leaf permutation split recursively in half) with all edge
    /// counts zero.
    ///
    /// # Panics
    /// Panics if `n < 2` — a dendrogram needs at least one internal node.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n >= 2, "dendrogram needs at least 2 leaves, got {n}");
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let internal = n - 1;
        let mut d = Dendrogram {
            n,
            left: vec![Child::Leaf(0); internal],
            right: vec![Child::Leaf(0); internal],
            parent: vec![NO_PARENT; internal],
            leaf_parent: vec![NO_PARENT; n],
            leaves: vec![0; internal],
            e: vec![0; internal],
            root: 0,
            mark: vec![0; internal],
            leaf_mark: vec![0; n],
            stamp: 0,
        };
        let mut next = 0u32;
        let root = d.build_balanced(&perm, &mut next);
        match root {
            Child::Internal(r) => d.root = r,
            Child::Leaf(_) => unreachable!("n >= 2 always yields an internal root"),
        }
        d
    }

    fn build_balanced(&mut self, leaves: &[u32], next: &mut u32) -> Child {
        if leaves.len() == 1 {
            return Child::Leaf(leaves[0]);
        }
        let id = *next;
        *next += 1;
        let mid = leaves.len() / 2;
        let l = self.build_balanced(&leaves[..mid], next);
        let r = self.build_balanced(&leaves[mid..], next);
        self.left[id as usize] = l;
        self.right[id as usize] = r;
        for (child, side) in [(l, true), (r, false)] {
            let _ = side;
            match child {
                Child::Leaf(u) => self.leaf_parent[u as usize] = id,
                Child::Internal(c) => self.parent[c as usize] = id,
            }
        }
        self.leaves[id as usize] = leaves.len() as u32;
        Child::Internal(id)
    }

    /// Builds a random dendrogram and initialises the edge counts from `g`.
    pub fn from_graph<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Self {
        let mut d = Dendrogram::random(g.node_count(), rng);
        d.recompute_edge_counts(g);
        d
    }

    /// Number of leaves (graph nodes).
    pub fn leaf_count(&self) -> usize {
        self.n
    }

    /// Number of internal nodes (`n − 1`).
    pub fn internal_count(&self) -> usize {
        self.n - 1
    }

    /// Approximate heap footprint of the dendrogram's owned buffers in
    /// bytes (capacity, not length), for cache accounting.
    pub fn heap_bytes(&self) -> usize {
        fn vb<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>()
        }
        vb(&self.left)
            + vb(&self.right)
            + vb(&self.parent)
            + vb(&self.leaf_parent)
            + vb(&self.leaves)
            + vb(&self.e)
            + vb(&self.mark)
            + vb(&self.leaf_mark)
    }

    /// Edge count `E_r` at internal node `r`.
    pub fn edges_at(&self, r: u32) -> u64 {
        self.e[r as usize]
    }

    /// The number of leaf pairs `L_r · R_r` split by internal node `r`.
    pub fn pairs_at(&self, r: u32) -> u64 {
        let (l, rr) = self.child_leaf_counts(r);
        l as u64 * rr as u64
    }

    fn child_leaves(&self, c: Child) -> u32 {
        match c {
            Child::Leaf(_) => 1,
            Child::Internal(i) => self.leaves[i as usize],
        }
    }

    fn child_leaf_counts(&self, r: u32) -> (u32, u32) {
        (self.child_leaves(self.left[r as usize]), self.child_leaves(self.right[r as usize]))
    }

    /// Lowest common ancestor (an internal node) of two distinct leaves.
    pub fn lca(&mut self, u: NodeId, v: NodeId) -> u32 {
        debug_assert_ne!(u, v, "LCA of identical leaves is undefined");
        self.stamp += 1;
        let stamp = self.stamp;
        let mut cur = self.leaf_parent[u as usize];
        while cur != NO_PARENT {
            self.mark[cur as usize] = stamp;
            cur = self.parent[cur as usize];
        }
        let mut cur = self.leaf_parent[v as usize];
        loop {
            if self.mark[cur as usize] == stamp {
                return cur;
            }
            cur = self.parent[cur as usize];
            debug_assert_ne!(cur, NO_PARENT, "leaves must share the root");
        }
    }

    /// Recomputes every `E_r` from scratch against `g`.
    pub fn recompute_edge_counts(&mut self, g: &Graph) {
        assert_eq!(g.node_count(), self.n, "graph/dendrogram size mismatch");
        self.e.iter_mut().for_each(|x| *x = 0);
        for (u, v) in g.edges() {
            let r = self.lca(u, v);
            self.e[r as usize] += 1;
        }
    }

    /// Per-internal-node log-likelihood term
    /// `E ln p + (T − E) ln(1 − p)` with `p = E/T` and `0 ln 0 = 0`.
    fn term(e: u64, t: u64) -> f64 {
        if t == 0 || e == 0 || e >= t {
            return 0.0;
        }
        let p = e as f64 / t as f64;
        e as f64 * p.ln() + (t - e) as f64 * (1.0 - p).ln()
    }

    /// The dendrogram log-likelihood `Σ_r E_r ln p_r + (T_r − E_r) ln(1 − p_r)`.
    pub fn log_likelihood(&self) -> f64 {
        (0..self.internal_count() as u32)
            .map(|r| Self::term(self.e[r as usize], self.pairs_at(r)))
            .sum()
    }

    /// Collects the graph-node ids of all leaves under `child`.
    fn collect_leaves(&self, child: Child, out: &mut Vec<u32>) {
        match child {
            Child::Leaf(u) => out.push(u),
            Child::Internal(i) => {
                let mut stack = vec![i];
                while let Some(r) = stack.pop() {
                    for c in [self.left[r as usize], self.right[r as usize]] {
                        match c {
                            Child::Leaf(u) => out.push(u),
                            Child::Internal(j) => stack.push(j),
                        }
                    }
                }
            }
        }
    }

    /// Number of graph edges between the leaf sets of two disjoint
    /// subtrees.
    fn edges_between(&mut self, g: &Graph, x: Child, y: Child) -> u64 {
        let mut lx = Vec::new();
        let mut ly = Vec::new();
        self.collect_leaves(x, &mut lx);
        self.collect_leaves(y, &mut ly);
        // Mark the side we probe against; iterate the other.
        let (iter_side, mark_side) = if lx.len() <= ly.len() { (&lx, &ly) } else { (&ly, &lx) };
        self.stamp += 1;
        let stamp = self.stamp;
        for &u in mark_side {
            self.leaf_mark[u as usize] = stamp;
        }
        let mut count = 0u64;
        for &u in iter_side {
            for &v in g.neighbors(u) {
                if self.leaf_mark[v as usize] == stamp {
                    count += 1;
                }
            }
        }
        count
    }

    /// One step of the Clauset–Moore–Newman subtree-swap Markov chain with
    /// Metropolis acceptance `min(1, exp(factor · Δ logL))`. Returns
    /// whether the move was accepted.
    ///
    /// `factor = 1` samples dendrograms ∝ likelihood; PrivHRG passes
    /// `ε₁ / (2 Δ logL)` to target the exponential mechanism instead.
    pub fn mcmc_step<R: Rng + ?Sized>(&mut self, g: &Graph, factor: f64, rng: &mut R) -> bool {
        if self.internal_count() < 2 {
            return false; // no non-root internal node to move
        }
        // Choose a non-root internal node r.
        let r = loop {
            let cand = rng.gen_range(0..self.internal_count() as u32);
            if cand != self.root {
                break cand;
            }
        };
        let q = self.parent[r as usize];
        let a = self.left[r as usize];
        let b = self.right[r as usize];
        // c = r's sibling under q.
        let r_is_left = self.left[q as usize] == Child::Internal(r);
        let c = if r_is_left { self.right[q as usize] } else { self.left[q as usize] };

        let (la, lb) = (self.child_leaves(a) as u64, self.child_leaves(b) as u64);
        let lc = self.child_leaves(c) as u64;
        let e_ab = self.e[r as usize];
        let e_q = self.e[q as usize];
        let e_ac = self.edges_between(g, a, c);
        let e_bc = e_q - e_ac;

        let old = Self::term(e_ab, la * lb) + Self::term(e_q, (la + lb) * lc);
        // The two alternative configurations.
        let swap_with_b = rng.gen_bool(0.5);
        let (new_r_children, new_er, new_eq, new_pairs_r, new_pairs_q, moved_out) = if swap_with_b {
            // r = (A, C), q = (r, B)
            ((a, c), e_ac, e_ab + e_bc, la * lc, (la + lc) * lb, b)
        } else {
            // r = (B, C), q = (r, A)
            ((b, c), e_bc, e_ab + e_ac, lb * lc, (lb + lc) * la, a)
        };
        let new = Self::term(new_er, new_pairs_r) + Self::term(new_eq, new_pairs_q);
        let delta = new - old;
        if delta < 0.0 {
            let accept_p = (factor * delta).exp();
            if !rng.gen_bool(accept_p.clamp(0.0, 1.0)) {
                return false;
            }
        }
        // Apply the restructure: r adopts (x, c); q adopts (r, moved_out).
        self.left[r as usize] = new_r_children.0;
        self.right[r as usize] = new_r_children.1;
        if r_is_left {
            self.left[q as usize] = Child::Internal(r);
            self.right[q as usize] = moved_out;
        } else {
            self.right[q as usize] = Child::Internal(r);
            self.left[q as usize] = moved_out;
        }
        for child in [new_r_children.0, new_r_children.1] {
            match child {
                Child::Leaf(u) => self.leaf_parent[u as usize] = r,
                Child::Internal(i) => self.parent[i as usize] = r,
            }
        }
        match moved_out {
            Child::Leaf(u) => self.leaf_parent[u as usize] = q,
            Child::Internal(i) => self.parent[i as usize] = q,
        }
        self.leaves[r as usize] =
            self.child_leaves(new_r_children.0) + self.child_leaves(new_r_children.1);
        self.e[r as usize] = new_er;
        self.e[q as usize] = new_eq;
        true
    }

    /// Samples a graph from the dendrogram using the maximum-likelihood
    /// probabilities `p_r = E_r / T_r`.
    pub fn sample_graph<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let probs: Vec<f64> = (0..self.internal_count() as u32)
            .map(|r| {
                let t = self.pairs_at(r);
                if t == 0 {
                    0.0
                } else {
                    self.e[r as usize] as f64 / t as f64
                }
            })
            .collect();
        self.sample_graph_with(&probs, rng)
    }

    /// Samples a graph using caller-supplied per-internal-node connection
    /// probabilities (PrivHRG passes noisy ones). Probabilities are clamped
    /// into `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `probs.len() != internal_count()`.
    pub fn sample_graph_with<R: Rng + ?Sized>(&self, probs: &[f64], rng: &mut R) -> Graph {
        assert_eq!(probs.len(), self.internal_count(), "probability vector length mismatch");
        let mut b = GraphBuilder::new(self.n);
        let mut lx = Vec::new();
        let mut ly = Vec::new();
        for r in 0..self.internal_count() as u32 {
            let p = probs[r as usize].clamp(0.0, 1.0);
            if p <= 0.0 {
                continue;
            }
            lx.clear();
            ly.clear();
            self.collect_leaves(self.left[r as usize], &mut lx);
            self.collect_leaves(self.right[r as usize], &mut ly);
            let pairs = lx.len() as u64 * ly.len() as u64;
            let count = sample_binomial(pairs, p, rng);
            if count * 3 >= pairs {
                // Dense regime: Bernoulli per pair avoids rejection stalls.
                for &u in &lx {
                    for &v in &ly {
                        if rng.gen_range(0.0f64..1.0) < p {
                            b.push(u, v);
                        }
                    }
                }
            } else {
                let mut seen = std::collections::HashSet::with_capacity(count as usize * 2);
                while (seen.len() as u64) < count {
                    let i = rng.gen_range(0..lx.len());
                    let j = rng.gen_range(0..ly.len());
                    if seen.insert((i, j)) {
                        b.push(lx[i], ly[j]);
                    }
                }
            }
        }
        b.build().expect("leaf ids bounded by n")
    }

    /// Structural sanity check used by tests: parent/child pointers are
    /// mutually consistent, leaf counts add up, and every leaf is reachable
    /// exactly once.
    pub fn check_invariants(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![self.root];
        let mut visited_internal = 0usize;
        while let Some(r) = stack.pop() {
            visited_internal += 1;
            let mut count = 0u32;
            for c in [self.left[r as usize], self.right[r as usize]] {
                match c {
                    Child::Leaf(u) => {
                        if seen[u as usize] || self.leaf_parent[u as usize] != r {
                            return false;
                        }
                        seen[u as usize] = true;
                        count += 1;
                    }
                    Child::Internal(i) => {
                        if self.parent[i as usize] != r {
                            return false;
                        }
                        stack.push(i);
                        count += self.leaves[i as usize];
                    }
                }
            }
            if count != self.leaves[r as usize] {
                return false;
            }
        }
        visited_internal == self.internal_count() && seen.iter().all(|&s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cliques(bridge: bool) -> Graph {
        // Two K4s, optionally bridged.
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        if bridge {
            edges.push((0, 4));
        }
        Graph::from_edges(8, edges).unwrap()
    }

    #[test]
    fn random_dendrogram_invariants() {
        let mut rng = StdRng::seed_from_u64(130);
        for n in [2usize, 3, 5, 16, 33] {
            let d = Dendrogram::random(n, &mut rng);
            assert!(d.check_invariants(), "n = {n}");
            assert_eq!(d.internal_count(), n - 1);
        }
    }

    #[test]
    fn edge_counts_sum_to_m() {
        let mut rng = StdRng::seed_from_u64(131);
        let g = two_cliques(true);
        let d = Dendrogram::from_graph(&g, &mut rng);
        let total: u64 = (0..d.internal_count() as u32).map(|r| d.edges_at(r)).sum();
        assert_eq!(total, g.edge_count() as u64);
    }

    #[test]
    fn lca_of_siblings() {
        let mut rng = StdRng::seed_from_u64(132);
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut d = Dendrogram::from_graph(&g, &mut rng);
        // The LCA must be symmetric and a valid internal node.
        for (u, v) in [(0u32, 1u32), (1, 3), (0, 3)] {
            let a = d.lca(u, v);
            let b = d.lca(v, u);
            assert_eq!(a, b);
            assert!((a as usize) < d.internal_count());
        }
    }

    #[test]
    fn mcmc_preserves_invariants_and_counts() {
        let mut rng = StdRng::seed_from_u64(133);
        let g = two_cliques(true);
        let mut d = Dendrogram::from_graph(&g, &mut rng);
        for step in 0..500 {
            d.mcmc_step(&g, 1.0, &mut rng);
            if step % 100 == 0 {
                assert!(d.check_invariants(), "step {step}");
                // Incremental counts must equal a fresh recompute.
                let mut fresh = d.clone();
                fresh.recompute_edge_counts(&g);
                for r in 0..d.internal_count() as u32 {
                    assert_eq!(d.edges_at(r), fresh.edges_at(r), "node {r} at step {step}");
                }
            }
        }
    }

    #[test]
    fn mcmc_improves_likelihood_on_structured_graph() {
        let mut rng = StdRng::seed_from_u64(134);
        let g = two_cliques(false);
        let mut d = Dendrogram::from_graph(&g, &mut rng);
        let start = d.log_likelihood();
        for _ in 0..3_000 {
            d.mcmc_step(&g, 1.0, &mut rng);
        }
        let end = d.log_likelihood();
        assert!(end >= start, "likelihood went from {start} to {end}");
        // Two separate cliques are perfectly explained: optimal logL ≈ 0.
        assert!(end > -8.0, "end likelihood {end}");
    }

    #[test]
    fn sample_graph_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(135);
        let g = two_cliques(true);
        let mut d = Dendrogram::from_graph(&g, &mut rng);
        for _ in 0..2_000 {
            d.mcmc_step(&g, 1.0, &mut rng);
        }
        // ML sampling reproduces the edge count in expectation.
        let reps = 30;
        let mean: f64 =
            (0..reps).map(|_| d.sample_graph(&mut rng).edge_count() as f64).sum::<f64>()
                / reps as f64;
        let m = g.edge_count() as f64;
        assert!((mean - m).abs() < 0.35 * m, "mean {mean} vs m {m}");
    }

    #[test]
    fn sample_graph_with_extreme_probs() {
        let mut rng = StdRng::seed_from_u64(136);
        let g = two_cliques(false);
        let d = Dendrogram::from_graph(&g, &mut rng);
        let zeros = vec![0.0; d.internal_count()];
        assert_eq!(d.sample_graph_with(&zeros, &mut rng).edge_count(), 0);
        let ones = vec![1.0; d.internal_count()];
        // All-ones probabilities yield the complete graph.
        assert_eq!(d.sample_graph_with(&ones, &mut rng).edge_count(), 8 * 7 / 2);
        // Out-of-range values are clamped, not propagated.
        let wild = vec![7.5; d.internal_count()];
        assert_eq!(d.sample_graph_with(&wild, &mut rng).edge_count(), 8 * 7 / 2);
    }

    #[test]
    #[should_panic(expected = "at least 2 leaves")]
    fn tiny_dendrogram_panics() {
        let mut rng = StdRng::seed_from_u64(137);
        Dendrogram::random(1, &mut rng);
    }
}
