//! The configuration model: uniform stub matching for a target degree
//! sequence, simplified (self-loops and multi-edges dropped).

use pgb_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Samples a configuration-model graph for `degrees`: each node gets
/// `degrees[u]` stubs, stubs are paired uniformly at random, and the
/// pairing is simplified into a simple graph. Realised degrees are
/// therefore close to, but at most, the targets.
pub fn configuration_model<R: Rng + ?Sized>(degrees: &[u32], rng: &mut R) -> Graph {
    let n = degrees.len();
    let mut stubs: Vec<NodeId> = Vec::with_capacity(degrees.iter().map(|&d| d as usize).sum());
    for (u, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            stubs.push(u as NodeId);
        }
    }
    // Fisher–Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut b = GraphBuilder::with_capacity(n, stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        b.push(pair[0], pair[1]); // self-loops/duplicates dropped at build
    }
    b.build().expect("ids bounded by n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::degree::degree_sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degrees_never_exceed_targets() {
        let mut rng = StdRng::seed_from_u64(90);
        let targets = vec![5u32, 3, 3, 2, 2, 2, 1, 1, 1];
        let g = configuration_model(&targets, &mut rng);
        for (u, &t) in targets.iter().enumerate() {
            assert!(g.degree(u as u32) as u32 <= t);
        }
        assert!(g.check_invariants());
    }

    #[test]
    fn most_degree_mass_realised_for_sparse_sequences() {
        let mut rng = StdRng::seed_from_u64(91);
        let targets: Vec<u32> = (0..2_000).map(|i| if i % 10 == 0 { 8 } else { 2 }).collect();
        let g = configuration_model(&targets, &mut rng);
        let got: u32 = degree_sequence(&g).iter().sum();
        let want: u32 = targets.iter().sum();
        // Sparse sequences lose only the rare collision edges.
        assert!(got as f64 > 0.97 * want as f64, "{got}/{want}");
    }

    #[test]
    fn empty_and_zero_sequences() {
        let mut rng = StdRng::seed_from_u64(92);
        assert_eq!(configuration_model(&[], &mut rng).node_count(), 0);
        let g = configuration_model(&[0, 0], &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn odd_stub_total_drops_one() {
        let mut rng = StdRng::seed_from_u64(93);
        let g = configuration_model(&[1, 1, 1], &mut rng);
        assert_eq!(g.edge_count(), 1); // one stub unmatched
    }
}
