//! Shared sampling primitives for the graph constructors.

use pgb_graph::NodeId;
use rand::Rng;

/// Samples from Binomial(n, p).
///
/// Three regimes keep this fast across the benchmark's extremes (ER blocks
/// with millions of trials, HRG internal nodes with a handful):
/// * tiny `n`: direct Bernoulli summation;
/// * small mean: geometric waiting-time counting (`O(np)` expected);
/// * large variance: normal approximation, clamped and rounded.
pub fn sample_binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work with q = min(p, 1-p) and mirror at the end.
    let mirrored = p > 0.5;
    let q = if mirrored { 1.0 - p } else { p };
    let mean = n as f64 * q;
    let var = mean * (1.0 - q);
    let successes = if n <= 64 {
        (0..n).filter(|_| rng.gen_bool(q)).count() as u64
    } else if var > 900.0 {
        // Normal approximation: relative error is negligible once the
        // standard deviation exceeds 30.
        let z = sample_standard_normal(rng);
        let s = (mean + z * var.sqrt()).round();
        s.clamp(0.0, n as f64) as u64
    } else {
        // Count successes via geometric jumps between them.
        let log1q = (1.0 - q).ln();
        let mut count = 0u64;
        let mut i = 0u64;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (u.ln() / log1q).floor() as u64;
            i = i.saturating_add(skip).saturating_add(1);
            if i > n {
                break;
            }
            count += 1;
        }
        count
    };
    if mirrored {
        n - successes
    } else {
        successes
    }
}

/// One standard-normal sample (Box–Muller; one value per call keeps the
/// interface stateless).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a uniformly random unordered pair of distinct nodes from `0..n`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn random_pair<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (NodeId, NodeId) {
    assert!(n >= 2, "need at least two nodes, got {n}");
    let u = rng.gen_range(0..n as u32);
    let mut v = rng.gen_range(0..(n - 1) as u32);
    if v >= u {
        v += 1;
    }
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Samples `k` distinct unordered node pairs from `0..n` uniformly (the
/// `G(n, m)` primitive). Rejection sampling is fine for the sparse graphs
/// PGB works with; the call panics if `k` exceeds the number of pairs.
pub fn sample_distinct_pairs<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(k <= total, "cannot sample {k} distinct pairs from {total}");
    let mut seen = std::collections::HashSet::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    // Beyond half the pair universe, rejection stalls: enumerate instead.
    if k * 2 > total {
        let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(total);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                all.push((u, v));
            }
        }
        for i in 0..k {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(k);
        return all;
    }
    while out.len() < k {
        let pair = random_pair(n, rng);
        if seen.insert(pair) {
            out.push(pair);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(50);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(10, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(10, 1.0, &mut rng), 10);
    }

    #[test]
    fn binomial_mean_small_regime() {
        let mut rng = StdRng::seed_from_u64(51);
        let (n, p) = (1000u64, 0.003);
        let trials = 20_000;
        let mean = (0..trials).map(|_| sample_binomial(n, p, &mut rng) as f64).sum::<f64>()
            / trials as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn binomial_mean_normal_regime() {
        let mut rng = StdRng::seed_from_u64(52);
        let (n, p) = (1_000_000u64, 0.01);
        let trials = 300;
        let mean = (0..trials).map(|_| sample_binomial(n, p, &mut rng) as f64).sum::<f64>()
            / trials as f64;
        assert!((mean - 10_000.0).abs() < 100.0, "mean {mean}");
    }

    #[test]
    fn binomial_mirrored_high_p() {
        let mut rng = StdRng::seed_from_u64(53);
        let (n, p) = (10_000u64, 0.999);
        let trials = 200;
        let mean = (0..trials).map(|_| sample_binomial(n, p, &mut rng) as f64).sum::<f64>()
            / trials as f64;
        assert!((mean - 9_990.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(54);
        for _ in 0..2000 {
            assert!(sample_binomial(100, 0.97, &mut rng) <= 100);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(55);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn random_pair_valid_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(56);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let (u, v) = random_pair(4, &mut rng);
            assert!(u < v && v < 4);
            *counts.entry((u, v)).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 6);
        for &c in counts.values() {
            assert!((c as f64 - 5_000.0).abs() < 400.0, "counts {counts:?}");
        }
    }

    #[test]
    fn distinct_pairs_are_distinct() {
        let mut rng = StdRng::seed_from_u64(57);
        let pairs = sample_distinct_pairs(50, 500, &mut rng);
        assert_eq!(pairs.len(), 500);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn distinct_pairs_dense_request() {
        let mut rng = StdRng::seed_from_u64(58);
        // All pairs of 5 nodes.
        let pairs = sample_distinct_pairs(5, 10, &mut rng);
        assert_eq!(pairs.len(), 10);
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn too_many_pairs_panics() {
        let mut rng = StdRng::seed_from_u64(59);
        sample_distinct_pairs(3, 4, &mut rng);
    }
}
