//! # pgb-models
//!
//! The random-graph constructors of the PGB benchmark — the *construction*
//! stage of the common framework (Fig. 1 of the paper) plus the generative
//! models behind the synthetic datasets:
//!
//! * [`er`] — Erdős–Rényi `G(n, p)` and `G(n, m)` (synthetic dataset T7).
//! * [`ba`] — Barabási–Albert preferential attachment (synthetic dataset).
//! * [`chung_lu`](mod@chung_lu) — the Chung–Lu expected-degree model (PrivGraph's
//!   constructor).
//! * [`bter`](mod@bter) — Block Two-level Erdős–Rényi (DGG / LDPGen's constructor).
//! * [`config_model`] — the configuration model.
//! * [`havel_hakimi`](mod@havel_hakimi) — graphicality testing and Havel–Hakimi realisation
//!   (DP-dK's dK-1 constructor).
//! * [`dk`] — dK-series constructors (dK-1, dK-2) for DP-dK.
//! * [`kronecker`] — stochastic Kronecker graphs and their closed-form
//!   moments (PrivSKG's model).
//! * [`hrg`] — hierarchical random graphs: dendrograms, likelihood, MCMC
//!   (PrivHRG's model).
//! * [`lattice`] — grid graphs (road-network stand-ins).
//! * [`watts_strogatz`](mod@watts_strogatz) — small-world graphs.
//! * [`cliques`] — overlapping-clique covers (collaboration-network
//!   stand-ins).
//! * [`sampling`] — shared sampling primitives (binomial, distinct pairs).
//!
//! Every generator takes an explicit [`rand::Rng`] so benchmark runs are
//! reproducible from a seed.

pub mod ba;
pub mod bter;
pub mod chung_lu;
pub mod cliques;
pub mod config_model;
pub mod dk;
pub mod er;
pub mod havel_hakimi;
pub mod hrg;
pub mod kronecker;
pub mod lattice;
pub mod sampling;
pub mod watts_strogatz;

pub use ba::{barabasi_albert, barabasi_albert_streaming};
pub use bter::{bter, BterParams, CcdSpec};
pub use chung_lu::chung_lu;
pub use config_model::configuration_model;
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use havel_hakimi::{havel_hakimi, is_graphical};
pub use kronecker::{Initiator, KroneckerModel};
pub use lattice::grid_graph;
pub use watts_strogatz::watts_strogatz;
