//! The Chung–Lu expected-degree model — PrivGraph's intra-community
//! constructor.
//!
//! Given target weights `w` (usually a noisy degree sequence), each pair
//! `{u, v}` is an edge independently with probability
//! `min(1, wᵤ wᵥ / Σw)`, so expected degrees approximate the targets.
//! Implemented with the Miller–Hagberg (2011) sorted skip-sampling
//! algorithm, which runs in `O(n + m)` expected time instead of `O(n²)`.

use pgb_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Generates a Chung–Lu graph over `weights.len()` nodes. Node `u`'s
/// expected degree approximates `weights[u]` (exactly when all
/// `wᵤ wᵥ < Σw`). Non-finite or negative weights are treated as zero.
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Graph {
    let n = weights.len();
    let mut clean: Vec<f64> =
        weights.iter().map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 }).collect();
    let total: f64 = clean.iter().sum();
    if n < 2 || total <= 0.0 {
        return Graph::new(n);
    }
    // Sort nodes by weight descending; remember original ids.
    let mut order: Vec<NodeId> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        clean[b as usize].partial_cmp(&clean[a as usize]).expect("weights are finite")
    });
    clean.sort_unstable_by(|a, b| b.partial_cmp(a).expect("weights are finite"));

    let mut b = GraphBuilder::with_capacity(n, (total / 2.0) as usize + 8);
    for i in 0..n - 1 {
        if clean[i] <= 0.0 {
            break; // all remaining weights are zero
        }
        let mut j = i + 1;
        let mut p = (clean[i] * clean[j] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                j = j.saturating_add(skip);
            }
            if j >= n {
                break;
            }
            let q = (clean[i] * clean[j] / total).min(1.0);
            // Accept with q/p: combined with the skip this realises an
            // exact Bernoulli(q) for position j (weights descend, q ≤ p).
            if rng.gen_range(0.0f64..1.0) < q / p {
                b.push(order[i], order[j]);
            }
            p = q;
            j += 1;
        }
    }
    b.build().expect("ids bounded by n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_weights_give_empty_graph() {
        let mut rng = StdRng::seed_from_u64(80);
        let g = chung_lu(&[0.0, 0.0, 0.0], &mut rng);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn negative_and_nan_weights_sanitised() {
        let mut rng = StdRng::seed_from_u64(81);
        let g = chung_lu(&[-3.0, f64::NAN, 2.0, 2.0], &mut rng);
        assert!(g.check_invariants());
        for u in [0u32, 1u32] {
            assert_eq!(g.degree(u), 0);
        }
    }

    #[test]
    fn expected_degrees_approximated() {
        let mut rng = StdRng::seed_from_u64(82);
        let n = 1_000usize;
        let weights: Vec<f64> = (0..n).map(|i| if i < 100 { 20.0 } else { 5.0 }).collect();
        // Average over repetitions.
        let reps = 30;
        let mut deg_sum = vec![0.0f64; n];
        for _ in 0..reps {
            let g = chung_lu(&weights, &mut rng);
            for u in g.nodes() {
                deg_sum[u as usize] += g.degree(u) as f64;
            }
        }
        let hi_avg: f64 = deg_sum[..100].iter().sum::<f64>() / (100.0 * reps as f64);
        let lo_avg: f64 = deg_sum[100..].iter().sum::<f64>() / (900.0 * reps as f64);
        assert!((hi_avg - 20.0).abs() < 1.0, "high-weight avg degree {hi_avg}");
        assert!((lo_avg - 5.0).abs() < 0.5, "low-weight avg degree {lo_avg}");
    }

    #[test]
    fn total_edges_close_to_half_weight_sum() {
        let mut rng = StdRng::seed_from_u64(83);
        let weights = vec![8.0; 600];
        let g = chung_lu(&weights, &mut rng);
        let m = g.edge_count() as f64;
        let expected = 8.0 * 600.0 / 2.0;
        assert!((m - expected).abs() < 5.0 * expected.sqrt(), "m {m} vs {expected}");
    }

    #[test]
    fn handles_oversized_weights() {
        let mut rng = StdRng::seed_from_u64(84);
        // w_u w_v / S > 1 clamps to certain edges; must not panic or loop.
        let g = chung_lu(&[100.0, 100.0, 1.0], &mut rng);
        assert!(g.has_edge(0, 1));
        assert!(g.check_invariants());
    }

    #[test]
    fn single_node_graph() {
        let mut rng = StdRng::seed_from_u64(85);
        let g = chung_lu(&[5.0], &mut rng);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
