//! Stochastic Kronecker graphs (SKG) — PrivSKG's model.
//!
//! A symmetric 2×2 initiator `[[a, b], [b, c]]` Kronecker-powered `k` times
//! defines edge probabilities over `n = 2^k` nodes:
//! `P[u, v] = Π_level θ[bit_level(u), bit_level(v)]`.
//!
//! Besides sampling, this module exposes the closed-form *moments* (expected
//! edges, wedges, triangles) that PrivSKG's private estimator matches
//! against noisy graph statistics.

use crate::sampling::sample_binomial;
use pgb_graph::{Graph, GraphBuilder};
use rand::Rng;

/// A symmetric 2×2 Kronecker initiator with entries in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Initiator {
    /// θ\[0\]\[0\].
    pub a: f64,
    /// θ\[0\]\[1\] = θ\[1\]\[0\].
    pub b: f64,
    /// θ\[1\]\[1\].
    pub c: f64,
}

impl Initiator {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics unless all entries lie in `[0, 1]`.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        for (name, v) in [("a", a), ("b", b), ("c", c)] {
            assert!((0.0..=1.0).contains(&v), "initiator {name} must be in [0,1], got {v}");
        }
        Initiator { a, b, c }
    }

    /// Sum of all four initiator entries `a + 2b + c`.
    pub fn total(&self) -> f64 {
        self.a + 2.0 * self.b + self.c
    }
}

/// A stochastic Kronecker graph model: initiator plus the number of
/// Kronecker levels `k` (so `n = 2^k`).
#[derive(Clone, Copy, Debug)]
pub struct KroneckerModel {
    /// The 2×2 symmetric initiator.
    pub initiator: Initiator,
    /// Number of Kronecker levels.
    pub k: u32,
}

impl KroneckerModel {
    /// Number of nodes `2^k`.
    pub fn node_count(&self) -> usize {
        1usize << self.k
    }

    /// Exact edge probability for the ordered pair `(u, v)`.
    pub fn edge_probability(&self, u: usize, v: usize) -> f64 {
        let Initiator { a, b, c } = self.initiator;
        let mut p = 1.0;
        for level in 0..self.k {
            let (bu, bv) = ((u >> level) & 1, (v >> level) & 1);
            p *= match (bu, bv) {
                (0, 0) => a,
                (1, 1) => c,
                _ => b,
            };
        }
        p
    }

    /// Expected number of **undirected** edges:
    /// `((a + 2b + c)^k − (a + c)^k) / 2` — total ordered mass minus the
    /// diagonal, halved.
    pub fn expected_edges(&self) -> f64 {
        let Initiator { a, b, c } = self.initiator;
        let kf = self.k as i32;
        ((a + 2.0 * b + c).powi(kf) - (a + c).powi(kf)) / 2.0
    }

    /// Expected number of wedges (unordered paths of length 2), exactly:
    ///
    /// `Σ_u [(R_u − P_uu)² − (Q_u − P_uu²)] / 2`, where `R_u` is the row
    /// sum and `Q_u` the row sum of squares. All four pieces have Kronecker
    /// closed forms:
    /// `Σ R_u² = ((a+b)² + (b+c)²)^k`, `Σ Q_u = (a² + 2b² + c²)^k`,
    /// `Σ R_u P_uu = (a(a+b) + c(b+c))^k`, `Σ P_uu² = (a² + c²)^k`.
    pub fn expected_wedges(&self) -> f64 {
        let Initiator { a, b, c } = self.initiator;
        let kf = self.k as i32;
        let row_sq = ((a + b).powi(2) + (b + c).powi(2)).powi(kf);
        let q = (a * a + 2.0 * b * b + c * c).powi(kf);
        let row_diag = (a * (a + b) + c * (b + c)).powi(kf);
        let diag_sq = (a * a + c * c).powi(kf);
        ((row_sq - q - 2.0 * row_diag + 2.0 * diag_sq) / 2.0).max(0.0)
    }

    /// Expected number of triangles, exactly: inclusion–exclusion over the
    /// ordered triple sum
    /// `T = (a³ + 3ab² + 3b²c + c³)^k` (all triples),
    /// `S_pair = (a³ + ab² + b²c + c³)^k` (two indices equal),
    /// `S_all = (a³ + c³)^k` (all equal):
    /// `E[△] = (T − 3 S_pair + 2 S_all) / 6`.
    pub fn expected_triangles(&self) -> f64 {
        let Initiator { a, b, c } = self.initiator;
        let kf = self.k as i32;
        let t = (a.powi(3) + 3.0 * a * b * b + 3.0 * b * b * c + c.powi(3)).powi(kf);
        let s_pair = (a.powi(3) + a * b * b + b * b * c + c.powi(3)).powi(kf);
        let s_all = (a.powi(3) + c.powi(3)).powi(kf);
        ((t - 3.0 * s_pair + 2.0 * s_all) / 6.0).max(0.0)
    }

    /// Samples a graph by exact per-pair Bernoulli trials — `O(n²)`, used
    /// for tests and small graphs.
    pub fn sample_exact<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let n = self.node_count();
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_range(0.0f64..1.0) < self.edge_probability(u, v) {
                    b.push(u as u32, v as u32);
                }
            }
        }
        b.build().expect("ids bounded by n")
    }

    /// Samples a graph with the fast "ball-dropping" method (as in
    /// graph500 / Leskovec's generator): draw a Binomial number of edge
    /// placements around the expected ordered-pair mass, route each down
    /// the Kronecker hierarchy quadrant by quadrant, and simplify.
    ///
    /// Duplicate placements collapse, so the realised edge count sits
    /// slightly below [`KroneckerModel::expected_edges`]; this matches the
    /// standard generator PrivSKG builds on.
    pub fn sample_fast<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let n = self.node_count();
        if self.initiator.total() <= 0.0 {
            return Graph::new(n);
        }
        let drops = self.sample_drop_count(rng);
        let mut pairs = Vec::with_capacity(drops as usize);
        self.sample_drops(drops, rng, &mut pairs);
        let mut builder = GraphBuilder::with_capacity(n, pairs.len());
        builder.extend(pairs);
        builder.build().expect("ids bounded by n")
    }

    /// Draws the number of ball drops for one [`KroneckerModel::sample_fast`]
    /// realisation: Binomial-dithered around the expected undirected edge
    /// count (each drop becomes one undirected edge candidate; duplicates
    /// collapse later in the builder).
    pub fn sample_drop_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let n = self.node_count();
        let cells = (n as u64).saturating_mul(n as u64 - 1) / 2;
        let p_cell = (self.expected_edges() / cells.max(1) as f64).min(1.0);
        sample_binomial(cells, p_cell, rng)
    }

    /// Routes `count` ball drops down the Kronecker hierarchy quadrant by
    /// quadrant, pushing each non-diagonal landing as a raw node pair.
    ///
    /// This is the independent per-drop kernel behind
    /// [`KroneckerModel::sample_fast`], exposed so callers can split the
    /// drop total into chunks with independent RNG streams (PrivSKG's
    /// parallel construction phase) — the pushed pairs still need the
    /// builder's dedup pass.
    pub fn sample_drops<R: Rng + ?Sized>(
        &self,
        count: u64,
        rng: &mut R,
        out: &mut Vec<(u32, u32)>,
    ) {
        let Initiator { a, b, c: _ } = self.initiator;
        let total = self.initiator.total();
        if total <= 0.0 {
            return;
        }
        let (pa, pb) = (a / total, b / total);
        for _ in 0..count {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..self.k {
                let r: f64 = rng.gen_range(0.0f64..1.0);
                let (bu, bv) = if r < pa {
                    (0, 0)
                } else if r < pa + pb {
                    (0, 1)
                } else if r < pa + 2.0 * pb {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | bu;
                v = (v << 1) | bv;
            }
            if u != v {
                out.push((u as u32, v as u32));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> KroneckerModel {
        KroneckerModel { initiator: Initiator::new(0.9, 0.5, 0.2), k: 8 }
    }

    #[test]
    fn edge_probability_is_product() {
        let m = KroneckerModel { initiator: Initiator::new(0.9, 0.5, 0.2), k: 2 };
        // u = 0b01, v = 0b11: levels give (1,1) → c and (0,1) → b.
        assert!((m.edge_probability(0b01, 0b11) - 0.2 * 0.5).abs() < 1e-12);
        // Diagonal: (0,0),(0,0) → a².
        assert!((m.edge_probability(0, 0) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn expected_edges_matches_bruteforce() {
        let m = KroneckerModel { initiator: Initiator::new(0.8, 0.4, 0.3), k: 6 };
        let n = m.node_count();
        let mut sum = 0.0;
        for u in 0..n {
            for v in (u + 1)..n {
                sum += m.edge_probability(u, v);
            }
        }
        let closed = m.expected_edges();
        assert!((sum - closed).abs() / sum < 1e-9, "brute {sum} closed {closed}");
    }

    #[test]
    fn expected_wedges_matches_bruteforce() {
        let m = KroneckerModel { initiator: Initiator::new(0.8, 0.4, 0.3), k: 5 };
        let n = m.node_count();
        // Brute-force expected wedges: Σ_u Σ_{v<w, v≠u≠w} P(u,v) P(u,w).
        let mut sum = 0.0;
        for u in 0..n {
            for v in 0..n {
                if v == u {
                    continue;
                }
                for w in (v + 1)..n {
                    if w == u {
                        continue;
                    }
                    sum += m.edge_probability(u, v) * m.edge_probability(u, w);
                }
            }
        }
        let closed = m.expected_wedges();
        assert!((sum - closed).abs() / sum < 1e-9, "brute {sum} closed {closed}");
    }

    #[test]
    fn expected_triangles_matches_bruteforce() {
        let m = KroneckerModel { initiator: Initiator::new(0.8, 0.4, 0.3), k: 5 };
        let n = m.node_count();
        let mut sum = 0.0;
        for u in 0..n {
            for v in (u + 1)..n {
                for w in (v + 1)..n {
                    sum += m.edge_probability(u, v)
                        * m.edge_probability(v, w)
                        * m.edge_probability(u, w);
                }
            }
        }
        let closed = m.expected_triangles();
        assert!((sum - closed).abs() / sum < 1e-9, "brute {sum} closed {closed}");
    }

    #[test]
    fn exact_sampler_concentrates() {
        let mut rng = StdRng::seed_from_u64(120);
        let m = model();
        let reps = 5;
        let mean: f64 =
            (0..reps).map(|_| m.sample_exact(&mut rng).edge_count() as f64).sum::<f64>()
                / reps as f64;
        let expected = m.expected_edges();
        assert!((mean - expected).abs() / expected < 0.1, "mean {mean} expected {expected}");
    }

    #[test]
    fn fast_sampler_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(121);
        let m = model();
        let g = m.sample_fast(&mut rng);
        let expected = m.expected_edges();
        let got = g.edge_count() as f64;
        // Duplicates cost a few percent.
        assert!(got > 0.75 * expected && got < 1.1 * expected, "got {got} expected {expected}");
        assert!(g.check_invariants());
    }

    #[test]
    fn fast_sampler_scales() {
        let mut rng = StdRng::seed_from_u64(122);
        let m = KroneckerModel { initiator: Initiator::new(0.9, 0.4, 0.25), k: 13 };
        let g = m.sample_fast(&mut rng);
        assert_eq!(g.node_count(), 8192);
        assert!(g.edge_count() > 1000);
    }

    #[test]
    fn zero_initiator_gives_empty_graph() {
        let mut rng = StdRng::seed_from_u64(123);
        let m = KroneckerModel { initiator: Initiator::new(0.0, 0.0, 0.0), k: 4 };
        assert_eq!(m.sample_fast(&mut rng).edge_count(), 0);
        assert_eq!(m.sample_exact(&mut rng).edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_initiator_panics() {
        Initiator::new(1.2, 0.0, 0.0);
    }
}
