//! Grid (lattice) graphs — the backbone of road-network stand-ins
//! (Table VI's Minnesota dataset: planar, near-constant degree, almost no
//! triangles).

use pgb_graph::{Graph, GraphBuilder};
use rand::Rng;

/// A `rows × cols` 4-neighbour grid graph. Node `(r, c)` has id
/// `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let u = (r * cols + c) as u32;
            if c + 1 < cols {
                b.push(u, u + 1);
            }
            if r + 1 < rows {
                b.push(u, u + cols as u32);
            }
        }
    }
    b.build().expect("ids bounded by n")
}

/// A grid with irregularities, mimicking real road networks: a fraction
/// `drop` of grid edges is removed and `diagonals` random diagonal
/// shortcuts (which create the occasional triangle) are added.
pub fn irregular_grid<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    drop: f64,
    diagonals: usize,
    rng: &mut R,
) -> Graph {
    assert!((0.0..=1.0).contains(&drop), "drop must be in [0,1], got {drop}");
    let base = grid_graph(rows, cols);
    let n = base.node_count();
    let mut b = GraphBuilder::with_capacity(n, base.edge_count() + diagonals);
    for (u, v) in base.edges() {
        if rng.gen_range(0.0f64..1.0) >= drop {
            b.push(u, v);
        }
    }
    for _ in 0..diagonals {
        let r = rng.gen_range(0..rows.saturating_sub(1));
        let c = rng.gen_range(0..cols.saturating_sub(1));
        let u = (r * cols + c) as u32;
        let v = u + cols as u32 + 1; // south-east diagonal
        b.push(u, v);
    }
    b.build().expect("ids bounded by n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_counts() {
        let g = grid_graph(3, 4);
        assert_eq!(g.node_count(), 12);
        // Horizontal: 3 rows × 3, vertical: 2 × 4.
        assert_eq!(g.edge_count(), 9 + 8);
        assert!(pgb_graph::traversal::is_connected(&g));
    }

    #[test]
    fn grid_degrees_bounded_by_four() {
        let g = grid_graph(5, 5);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.degree(0), 2); // corner
    }

    #[test]
    fn grid_has_no_triangles() {
        let g = grid_graph(6, 6);
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    assert!(!g.has_edge(a, b), "triangle at {u}");
                }
            }
        }
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid_graph(0, 5).node_count(), 0);
        let line = grid_graph(1, 7);
        assert_eq!(line.edge_count(), 6);
    }

    #[test]
    fn irregular_grid_drops_and_adds() {
        let mut rng = StdRng::seed_from_u64(140);
        let g = irregular_grid(20, 20, 0.2, 50, &mut rng);
        let base_edges = grid_graph(20, 20).edge_count();
        assert!(g.edge_count() < base_edges + 50);
        assert!(g.edge_count() > base_edges / 2);
        assert!(g.check_invariants());
    }

    #[test]
    fn diagonals_create_triangles() {
        let mut rng = StdRng::seed_from_u64(141);
        let g = irregular_grid(10, 10, 0.0, 40, &mut rng);
        let mut triangles = 0usize;
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) {
                        triangles += 1;
                    }
                }
            }
        }
        assert!(triangles > 0, "expected some triangles from diagonals");
    }
}
