//! Overlapping-clique cover graphs — collaboration-network stand-ins.
//!
//! Academic co-authorship graphs (Table VI's ca-HepPh, and CA-GrQc in the
//! verification appendix) are unions of author cliques, one per paper,
//! with authors recurring across papers. That recurrence produces the very
//! high clustering (ACC ≈ 0.6) and heavy-tailed degrees those datasets
//! show.

use pgb_graph::{Graph, GraphBuilder};
use rand::Rng;

/// Parameters of the clique-cover generator.
#[derive(Clone, Debug)]
pub struct CliqueCoverParams {
    /// Number of nodes (authors).
    pub n: usize,
    /// Number of cliques (papers).
    pub cliques: usize,
    /// Minimum clique size.
    pub size_min: usize,
    /// Maximum clique size (inclusive).
    pub size_max: usize,
    /// Strength of preferential recurrence: 0 = members chosen uniformly,
    /// larger values make previously active authors proportionally more
    /// likely to appear again (heavier degree tail).
    pub recurrence: f64,
}

/// Generates a union of random cliques.
///
/// Clique sizes are uniform in `[size_min, size_max]`; members are sampled
/// by a mixture of uniform choice and activity-proportional choice
/// controlled by `recurrence`.
pub fn clique_cover<R: Rng + ?Sized>(params: &CliqueCoverParams, rng: &mut R) -> Graph {
    let CliqueCoverParams { n, cliques, size_min, size_max, recurrence } = *params;
    assert!(size_min >= 2 && size_min <= size_max, "invalid clique size range");
    assert!(size_max <= n, "cliques cannot exceed the node count");
    assert!(recurrence >= 0.0, "recurrence must be non-negative");
    let mut b = GraphBuilder::new(n);
    // Activity list: one entry per clique membership (preferential pool).
    let mut active: Vec<u32> = Vec::new();
    let mut members: Vec<u32> = Vec::new();
    for _ in 0..cliques {
        let size = rng.gen_range(size_min..=size_max);
        members.clear();
        let mut tries = 0;
        while members.len() < size && tries < 50 * size {
            tries += 1;
            let prefer =
                !active.is_empty() && rng.gen_range(0.0f64..1.0) < recurrence / (1.0 + recurrence);
            let candidate = if prefer {
                active[rng.gen_range(0..active.len())]
            } else {
                rng.gen_range(0..n as u32)
            };
            if !members.contains(&candidate) {
                members.push(candidate);
            }
        }
        for (i, &u) in members.iter().enumerate() {
            active.push(u);
            for &v in &members[i + 1..] {
                b.push(u, v);
            }
        }
    }
    b.build().expect("ids bounded by n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acc(g: &Graph) -> f64 {
        let mut total = 0.0;
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            let d = nbrs.len();
            if d < 2 {
                continue;
            }
            let mut links = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) {
                        links += 1;
                    }
                }
            }
            total += 2.0 * links as f64 / (d as f64 * (d as f64 - 1.0));
        }
        total / g.node_count() as f64
    }

    fn params() -> CliqueCoverParams {
        CliqueCoverParams { n: 1_000, cliques: 400, size_min: 2, size_max: 8, recurrence: 1.0 }
    }

    #[test]
    fn produces_high_clustering() {
        let mut rng = StdRng::seed_from_u64(160);
        let g = clique_cover(&params(), &mut rng);
        assert!(acc(&g) > 0.35, "ACC {}", acc(&g));
        assert!(g.check_invariants());
    }

    #[test]
    fn recurrence_skews_degrees() {
        let mut rng = StdRng::seed_from_u64(161);
        let uniform = clique_cover(&CliqueCoverParams { recurrence: 0.0, ..params() }, &mut rng);
        let skewed = clique_cover(&CliqueCoverParams { recurrence: 8.0, ..params() }, &mut rng);
        assert!(
            skewed.max_degree() > uniform.max_degree(),
            "skewed {} vs uniform {}",
            skewed.max_degree(),
            uniform.max_degree()
        );
    }

    #[test]
    fn edge_count_bounded_by_clique_mass() {
        let mut rng = StdRng::seed_from_u64(162);
        let p = params();
        let g = clique_cover(&p, &mut rng);
        let max_edges = p.cliques * p.size_max * (p.size_max - 1) / 2;
        assert!(g.edge_count() <= max_edges);
        assert!(g.edge_count() > p.cliques); // at least ~1 edge per clique
    }

    #[test]
    #[should_panic(expected = "invalid clique size range")]
    fn bad_size_range_panics() {
        let mut rng = StdRng::seed_from_u64(163);
        clique_cover(
            &CliqueCoverParams { n: 10, cliques: 1, size_min: 5, size_max: 3, recurrence: 0.0 },
            &mut rng,
        );
    }
}
