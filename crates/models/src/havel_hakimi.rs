//! Graphicality testing (Erdős–Gallai) and Havel–Hakimi realisation.
//!
//! DP-dK's dK-1 constructor: after perturbing the degree histogram, the
//! noisy sequence is realised with Havel–Hakimi (the construction the PGB
//! verification appendix names explicitly). Noisy sequences are usually
//! *not* graphical, so [`havel_hakimi`] is best-effort: it realises as many
//! target degrees as possible and silently drops the remainder, matching
//! the reference implementation's behaviour.

use pgb_graph::{Graph, GraphBuilder};

/// Erdős–Gallai test: is `degrees` realisable as a simple undirected graph?
/// The input need not be sorted. An empty sequence is graphical.
pub fn is_graphical(degrees: &[u32]) -> bool {
    let n = degrees.len();
    let mut d: Vec<u64> = degrees.iter().map(|&x| x as u64).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));
    if d.first().copied().unwrap_or(0) as usize >= n && n > 0 {
        return false; // degree exceeds n − 1
    }
    let total: u64 = d.iter().sum();
    if !total.is_multiple_of(2) {
        return false;
    }
    // Σ_{i≤k} dᵢ ≤ k(k−1) + Σ_{i>k} min(dᵢ, k) for every k.
    let mut prefix = 0u64;
    for k in 1..=n {
        prefix += d[k - 1];
        let mut rhs = (k as u64) * (k as u64 - 1);
        for &di in &d[k..] {
            rhs += di.min(k as u64);
        }
        if prefix > rhs {
            return false;
        }
    }
    true
}

/// Best-effort Havel–Hakimi realisation of a target degree sequence.
///
/// Repeatedly takes the node with the largest remaining target degree `d`
/// and connects it to the `d` next-largest nodes. If the sequence is
/// graphical the result realises it exactly; otherwise the impossible
/// remainder is dropped. Returns the graph (node `u` targets
/// `degrees[u]`).
pub fn havel_hakimi(degrees: &[u32]) -> Graph {
    let n = degrees.len();
    if n == 0 {
        return Graph::new(0);
    }
    let mut remaining: Vec<(u32, u32)> = degrees
        .iter()
        .enumerate()
        .map(|(u, &d)| (d.min(n.saturating_sub(1) as u32), u as u32))
        .collect();
    let mut b =
        GraphBuilder::with_capacity(n, degrees.iter().map(|&d| d as usize).sum::<usize>() / 2);
    // Sort descending by remaining degree; re-sorting each round is
    // O(n log n) per round but rounds shrink fast; fine at benchmark scale.
    loop {
        remaining.sort_unstable_by(|a, b| b.cmp(a));
        let (d, u) = remaining[0];
        if d == 0 {
            break;
        }
        let take = (d as usize).min(remaining.len() - 1);
        remaining[0].0 = 0;
        for item in remaining.iter_mut().skip(1).take(take) {
            if item.0 > 0 {
                item.0 -= 1;
                b.push(u, item.1);
            } else {
                // Fewer positive-degree partners than requested: the
                // surplus is unrealisable and dropped.
                break;
            }
        }
    }
    b.build().expect("ids bounded by n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::degree::degree_sequence;

    #[test]
    fn erdos_gallai_known_cases() {
        assert!(is_graphical(&[]));
        assert!(is_graphical(&[0, 0]));
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[2, 2, 2])); // triangle
        assert!(is_graphical(&[3, 3, 3, 3])); // K4
        assert!(is_graphical(&[4, 1, 1, 1, 1])); // star
        assert!(!is_graphical(&[1])); // odd sum
        assert!(!is_graphical(&[3, 1, 1])); // degree ≥ n−1 violation
        assert!(!is_graphical(&[2, 2, 1])); // odd sum
        assert!(!is_graphical(&[4, 4, 4, 1, 1])); // EG inequality fails at k=3
    }

    #[test]
    fn hh_realises_graphical_sequences_exactly() {
        for seq in [
            vec![2u32, 2, 2],
            vec![3, 3, 3, 3],
            vec![4, 1, 1, 1, 1],
            vec![3, 2, 2, 2, 1],
            vec![2, 2, 2, 2, 2, 2],
        ] {
            assert!(is_graphical(&seq), "{seq:?} should be graphical");
            let g = havel_hakimi(&seq);
            assert_eq!(degree_sequence(&g), seq, "sequence {seq:?}");
            assert!(g.check_invariants());
        }
    }

    #[test]
    fn hh_best_effort_on_nongraphical() {
        // Odd sum: one endpoint must be dropped.
        let g = havel_hakimi(&[2, 2, 1]);
        assert!(g.check_invariants());
        let realised: u32 = degree_sequence(&g).iter().sum();
        assert!(realised >= 4, "realised {realised}");
        // Oversized degree clamps to n − 1.
        let g = havel_hakimi(&[100, 1, 1]);
        assert!(g.degree(0) <= 2);
    }

    #[test]
    fn hh_empty_and_zero() {
        assert_eq!(havel_hakimi(&[]).node_count(), 0);
        let g = havel_hakimi(&[0, 0, 0]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn hh_large_power_law_sequence() {
        // A large graphical-ish sequence: realised degrees must never
        // exceed targets.
        let seq: Vec<u32> = (1..=400u32).map(|i| (800 / i).min(80)).collect();
        let g = havel_hakimi(&seq);
        assert!(g.check_invariants());
        let out = degree_sequence(&g);
        for (u, (&got, &want)) in out.iter().zip(&seq).enumerate() {
            assert!(got <= want, "node {u}: {got} > {want}");
        }
        // And the bulk should be realised.
        let total_want: u32 = seq.iter().sum();
        let total_got: u32 = out.iter().sum();
        assert!(total_got as f64 > 0.95 * total_want as f64, "{total_got}/{total_want}");
    }
}
