//! Watts–Strogatz small-world graphs: a ring lattice with random
//! rewiring. High clustering with short paths — used by the clustered
//! dataset stand-ins.

use pgb_graph::{Graph, GraphBuilder};
use rand::Rng;

/// A Watts–Strogatz graph: `n` nodes on a ring, each joined to its `k`
/// nearest neighbours (`k/2` on each side), then every edge's far endpoint
/// rewired uniformly at random with probability `beta`.
///
/// # Panics
/// Panics unless `k` is even, `k < n`, and `beta ∈ [0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k.is_multiple_of(2), "k must be even, got {k}");
    assert!(k < n, "need k < n, got k={k}, n={n}");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1], got {beta}");
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    let mut present = std::collections::HashSet::with_capacity(n * k / 2);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for offset in 1..=k / 2 {
            let v = (u + offset) % n;
            let key = norm(u as u32, v as u32);
            if present.insert(key) {
                edges.push(key);
            }
        }
    }
    // Rewire pass.
    let mut rewired: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
    for &(u, v) in &edges {
        if rng.gen_range(0.0f64..1.0) < beta {
            // Replace v with a random node, avoiding self-loops and
            // duplicates; give up after a few tries on dense rings.
            let mut placed = false;
            for _ in 0..16 {
                let w = rng.gen_range(0..n as u32);
                if w == u {
                    continue;
                }
                let key = norm(u, w);
                if !present.contains(&key) {
                    present.remove(&norm(u, v));
                    present.insert(key);
                    rewired.push(key);
                    placed = true;
                    break;
                }
            }
            if !placed {
                rewired.push((u, v));
            }
        } else {
            rewired.push((u, v));
        }
    }
    for (u, v) in rewired {
        b.push(u, v);
    }
    b.build().expect("ids bounded by n")
}

fn norm(u: u32, v: u32) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acc(g: &Graph) -> f64 {
        let mut total = 0.0;
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            let d = nbrs.len();
            if d < 2 {
                continue;
            }
            let mut links = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) {
                        links += 1;
                    }
                }
            }
            total += 2.0 * links as f64 / (d as f64 * (d as f64 - 1.0));
        }
        total / g.node_count() as f64
    }

    #[test]
    fn ring_lattice_at_beta_zero() {
        let mut rng = StdRng::seed_from_u64(150);
        let g = watts_strogatz(50, 4, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 100);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        // Ring lattice with k = 4 has clustering 0.5.
        assert!((acc(&g) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let mut rng = StdRng::seed_from_u64(151);
        let ordered = watts_strogatz(500, 6, 0.0, &mut rng);
        let random = watts_strogatz(500, 6, 1.0, &mut rng);
        assert!(acc(&ordered) > 3.0 * acc(&random) + 0.05);
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        let mut rng = StdRng::seed_from_u64(152);
        let g = watts_strogatz(200, 8, 0.3, &mut rng);
        assert_eq!(g.edge_count(), 800);
        assert!(g.check_invariants());
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_panics() {
        let mut rng = StdRng::seed_from_u64(153);
        watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
