//! Block Two-level Erdős–Rényi (Seshadhri, Kolda & Pinar, Phys. Rev. E
//! 2012) — DGG / LDPGen's constructor.
//!
//! BTER matches a target degree sequence *and* a target per-degree
//! clustering profile by
//! 1. grouping nodes of similar degree into *affinity blocks* of size
//!    `d + 1` (phase 1), each an Erdős–Rényi block dense enough to supply
//!    the desired triangles, and
//! 2. wiring the leftover ("excess") degree with a Chung–Lu pass
//!    (phase 2).

use crate::chung_lu::chung_lu;
use crate::sampling::sample_binomial;
use pgb_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// How the per-degree clustering-coefficient target `c_d` is specified.
#[derive(Clone, Debug)]
pub enum CcdSpec {
    /// The same target for every degree.
    Constant(f64),
    /// `c_d = c_max / (1 + (d − 1))^decay` — the empirically motivated
    /// decaying profile of the BTER paper (higher-degree nodes cluster
    /// less). `c_max` is the target for degree-2 nodes.
    Decaying {
        /// Clustering target for the lowest clustering-capable degree.
        c_max: f64,
        /// Power-law decay exponent (0.5 in the original paper's fits).
        decay: f64,
    },
    /// Explicit per-degree targets; degrees beyond the table use the last
    /// entry.
    PerDegree(Vec<f64>),
}

impl CcdSpec {
    /// The clustering target for degree `d`, clamped into `[0, 1]`.
    pub fn target(&self, d: u32) -> f64 {
        let raw = match self {
            CcdSpec::Constant(c) => *c,
            CcdSpec::Decaying { c_max, decay } => {
                if d < 2 {
                    0.0
                } else {
                    c_max / (d as f64 - 1.0).powf(*decay)
                }
            }
            CcdSpec::PerDegree(table) => {
                if table.is_empty() {
                    0.0
                } else {
                    table[(d as usize).min(table.len() - 1)]
                }
            }
        };
        raw.clamp(0.0, 1.0)
    }
}

/// BTER parameters.
#[derive(Clone, Debug)]
pub struct BterParams {
    /// Per-degree clustering-coefficient targets.
    pub ccd: CcdSpec,
}

impl Default for BterParams {
    fn default() -> Self {
        // The decaying profile with c_max = 0.95 reproduces social-network
        // clustering shapes; DGG uses this default when only degrees are
        // known.
        BterParams { ccd: CcdSpec::Decaying { c_max: 0.95, decay: 0.75 } }
    }
}

/// Generates a BTER graph realising (approximately) the target `degrees`
/// with the clustering profile of `params`.
///
/// Degree-1 nodes skip phase 1 (a 2-block cannot contain a triangle) and
/// are wired entirely by the Chung–Lu phase, as in the original algorithm.
pub fn bter<R: Rng + ?Sized>(degrees: &[u32], params: &BterParams, rng: &mut R) -> Graph {
    let n = degrees.len();
    if n < 2 {
        return Graph::new(n);
    }
    // Nodes sorted by target degree ascending; blocks take consecutive runs.
    let mut order: Vec<NodeId> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&u| degrees[u as usize]);
    let first_d2 = order.partition_point(|&u| degrees[u as usize] < 2);

    let mut b =
        GraphBuilder::with_capacity(n, degrees.iter().map(|&d| d as usize).sum::<usize>() / 2);
    let mut excess: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();

    // ---- Phase 1: affinity blocks over nodes of degree ≥ 2 ----
    let mut i = first_d2;
    while i < order.len() {
        let d_min = degrees[order[i] as usize];
        let block_size = ((d_min as usize) + 1).min(order.len() - i);
        if block_size < 3 {
            // A 2-block cannot add clustering; leave to phase 2.
            i += block_size.max(1);
            continue;
        }
        let block = &order[i..i + block_size];
        // Connection probability: local clustering inside an ER block of
        // density ρ is ρ³-proportional, so ρ = c^(1/3) targets c.
        let rho = params.ccd.target(d_min).powf(1.0 / 3.0);
        if rho > 0.0 {
            let pairs = (block_size * (block_size - 1) / 2) as u64;
            let count = sample_binomial(pairs, rho, rng);
            let sampled = crate::sampling::sample_distinct_pairs(block_size, count as usize, rng);
            for (a, c) in sampled {
                b.push(block[a as usize], block[c as usize]);
            }
            // Expected within-block degree consumed per node.
            let consumed = rho * (block_size as f64 - 1.0);
            for &u in block {
                excess[u as usize] = (excess[u as usize] - consumed).max(0.0);
            }
        }
        i += block_size;
    }

    // ---- Phase 2: Chung–Lu on the excess degrees ----
    let cl = chung_lu(&excess, rng);
    for (u, v) in cl.edges() {
        b.push(u, v);
    }
    b.build().expect("ids bounded by n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::degree::degree_sequence;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Average clustering coefficient (local definition) — small helper to
    /// avoid a dev-dependency on pgb-queries.
    fn acc(g: &Graph) -> f64 {
        let n = g.node_count();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            let d = nbrs.len();
            if d < 2 {
                continue;
            }
            let mut links = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) {
                        links += 1;
                    }
                }
            }
            total += 2.0 * links as f64 / (d as f64 * (d as f64 - 1.0));
        }
        total / n as f64
    }

    #[test]
    fn ccd_spec_forms() {
        assert_eq!(CcdSpec::Constant(0.5).target(10), 0.5);
        assert_eq!(CcdSpec::Constant(3.0).target(10), 1.0); // clamped
        let dec = CcdSpec::Decaying { c_max: 0.8, decay: 1.0 };
        assert_eq!(dec.target(1), 0.0);
        assert!((dec.target(2) - 0.8).abs() < 1e-12);
        assert!((dec.target(5) - 0.2).abs() < 1e-12);
        let tab = CcdSpec::PerDegree(vec![0.0, 0.1, 0.2]);
        assert_eq!(tab.target(1), 0.1);
        assert_eq!(tab.target(9), 0.2); // saturates at the last entry
        assert_eq!(CcdSpec::PerDegree(vec![]).target(3), 0.0);
    }

    #[test]
    fn degrees_roughly_realised() {
        let mut rng = StdRng::seed_from_u64(110);
        let targets: Vec<u32> = (0..800).map(|i| 2 + (i % 10) as u32).collect();
        let g = bter(&targets, &BterParams::default(), &mut rng);
        let got: u32 = degree_sequence(&g).iter().sum();
        let want: u32 = targets.iter().sum();
        let ratio = got as f64 / want as f64;
        assert!((0.75..=1.25).contains(&ratio), "degree mass ratio {ratio}");
    }

    #[test]
    fn high_ccd_produces_clustering() {
        let mut rng = StdRng::seed_from_u64(111);
        let targets = vec![8u32; 600];
        let clustered = bter(&targets, &BterParams { ccd: CcdSpec::Constant(0.6) }, &mut rng);
        let flat = bter(&targets, &BterParams { ccd: CcdSpec::Constant(0.0) }, &mut rng);
        let (c_hi, c_lo) = (acc(&clustered), acc(&flat));
        assert!(c_hi > 0.25, "clustered ACC {c_hi}");
        assert!(c_lo < 0.1, "flat ACC {c_lo}");
        assert!(c_hi > 3.0 * c_lo, "ACC {c_hi} vs {c_lo}");
    }

    #[test]
    fn ccd_target_tracks_observed_acc() {
        let mut rng = StdRng::seed_from_u64(112);
        let targets = vec![10u32; 500];
        let g = bter(&targets, &BterParams { ccd: CcdSpec::Constant(0.5) }, &mut rng);
        let observed = acc(&g);
        // Phase-2 edges dilute clustering; expect the right order of
        // magnitude rather than exact calibration.
        assert!((0.15..=0.75).contains(&observed), "ACC {observed}");
    }

    #[test]
    fn degree_one_nodes_handled() {
        let mut rng = StdRng::seed_from_u64(113);
        let targets = vec![1u32; 100];
        let g = bter(&targets, &BterParams::default(), &mut rng);
        assert!(g.check_invariants());
        // Degree-1 nodes are wired only by the Chung–Lu phase: the mean
        // realised degree should track the target, with Poisson-like
        // per-node variation.
        let mean = g.average_degree();
        assert!((0.5..=1.5).contains(&mean), "mean degree {mean}");
        assert!(g.max_degree() <= 8, "max degree {}", g.max_degree());
    }

    #[test]
    fn tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(114);
        assert_eq!(bter(&[], &BterParams::default(), &mut rng).node_count(), 0);
        assert_eq!(bter(&[3], &BterParams::default(), &mut rng).edge_count(), 0);
    }
}
