//! dK-series constructors (Mahadevan et al., SIGCOMM 2006) — DP-dK's
//! construction stage.
//!
//! * dK-1 targets a degree *histogram* and realises it with Havel–Hakimi.
//! * dK-2 targets a *joint degree distribution* (JDD): the number of edges
//!   between nodes of degree `k1` and degree `k2`. The constructor places
//!   stub-endpoints per degree class and wires JDD entries with collision
//!   retries; realisation is approximate for noisy (inconsistent) targets,
//!   like the reference generator's.

use crate::havel_hakimi::havel_hakimi;
use pgb_graph::degree::{histogram_from_jdd, sequence_from_histogram, JointDegreeDistribution};
use pgb_graph::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Realises a dK-1 target (degree histogram) with Havel–Hakimi. Histogram
/// entry `hist[d]` is the number of nodes wanting degree `d`.
pub fn dk1_construct(hist: &[u64]) -> Graph {
    let seq = sequence_from_histogram(hist);
    havel_hakimi(&seq)
}

/// Maximum wiring attempts per requested edge before it is abandoned.
const DK2_RETRIES: usize = 12;

/// Realises a dK-2 target (joint degree distribution).
///
/// Node counts per degree class come from [`histogram_from_jdd`]; each JDD
/// entry `((k1, k2), c)` then draws `c` edges between stub-bearing nodes of
/// the two classes, rejecting self-loops, duplicate edges, and exhausted
/// stubs. Inconsistent (noisy) targets realise partially.
pub fn dk2_construct<R: Rng + ?Sized>(jdd: &JointDegreeDistribution, rng: &mut R) -> Graph {
    let hist = histogram_from_jdd(jdd);
    let n: u64 = hist.iter().sum();
    if n == 0 {
        return Graph::new(0);
    }
    // Assign node ids to degree classes in ascending-degree order.
    let mut class_members: Vec<Vec<NodeId>> = vec![Vec::new(); hist.len()];
    let mut remaining_stubs: Vec<u32> = vec![0; n as usize];
    let mut next_id: NodeId = 0;
    for (d, &count) in hist.iter().enumerate() {
        for _ in 0..count {
            class_members[d].push(next_id);
            remaining_stubs[next_id as usize] = d as u32;
            next_id += 1;
        }
    }
    // Wire larger degree pairs first: they are the hardest to place.
    let mut entries: Vec<(&(u32, u32), &u64)> = jdd.iter().collect();
    entries.sort_unstable_by(|a, b| {
        (b.0 .0 as u64 + b.0 .1 as u64).cmp(&(a.0 .0 as u64 + a.0 .1 as u64)).then(a.0.cmp(b.0))
    });

    let total_edges: u64 = jdd.values().sum();
    let mut b = GraphBuilder::with_capacity(n as usize, total_edges as usize);
    let mut placed: std::collections::HashSet<(NodeId, NodeId)> =
        std::collections::HashSet::with_capacity(total_edges as usize * 2);
    let pick = |class: &[NodeId], stubs: &[u32], rng: &mut R| -> Option<NodeId> {
        // A few uniform probes; then a linear scan fallback.
        for _ in 0..DK2_RETRIES {
            let u = class[rng.gen_range(0..class.len())];
            if stubs[u as usize] > 0 {
                return Some(u);
            }
        }
        class.iter().copied().find(|&u| stubs[u as usize] > 0)
    };
    for (&(k1, k2), &count) in entries {
        let (c1, c2) = (k1 as usize, k2 as usize);
        if c1 >= class_members.len() || c2 >= class_members.len() {
            continue;
        }
        if class_members[c1].is_empty() || class_members[c2].is_empty() {
            continue;
        }
        for _ in 0..count {
            let mut wired = false;
            for _ in 0..DK2_RETRIES {
                let Some(u) = pick(&class_members[c1], &remaining_stubs, rng) else { break };
                let Some(v) = pick(&class_members[c2], &remaining_stubs, rng) else { break };
                if u == v {
                    if class_members[c1].len() == 1 && c1 == c2 {
                        break; // a single node cannot host an intra-class edge
                    }
                    continue;
                }
                let key = if u < v { (u, v) } else { (v, u) };
                if placed.insert(key) {
                    remaining_stubs[u as usize] -= 1;
                    remaining_stubs[v as usize] -= 1;
                    b.push(key.0, key.1);
                    wired = true;
                    break;
                }
            }
            if !wired {
                // Out of stubs or saturated class pair: abandon the rest of
                // this entry (further attempts would also fail).
                break;
            }
        }
    }
    b.build().expect("ids bounded by n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_graph::degree::{degree_histogram, joint_degree_distribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dk1_realises_histogram() {
        // 4 nodes of degree 1, 2 of degree 2: e.g. two paths of 3 nodes.
        let g = dk1_construct(&[0, 4, 2]);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 4, 2]);
    }

    #[test]
    fn dk2_roundtrip_on_regular_graph() {
        let mut rng = StdRng::seed_from_u64(100);
        // A 6-cycle: JDD is {(2,2): 6}.
        let mut jdd = JointDegreeDistribution::new();
        jdd.insert((2, 2), 6);
        let g = dk2_construct(&jdd, &mut rng);
        assert_eq!(g.node_count(), 6);
        // Every realised edge joins degree-≤2 nodes; most of the 6 edges place.
        assert!(g.edge_count() >= 5, "placed {}", g.edge_count());
        assert!(g.check_invariants());
    }

    #[test]
    fn dk2_roundtrip_on_star() {
        let mut rng = StdRng::seed_from_u64(101);
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let jdd = joint_degree_distribution(&star);
        let g = dk2_construct(&jdd, &mut rng);
        let out = joint_degree_distribution(&g);
        assert_eq!(out.get(&(1, 4)).copied().unwrap_or(0), 4, "JDD {out:?}");
    }

    #[test]
    fn dk2_approximates_mixed_graph() {
        let mut rng = StdRng::seed_from_u64(102);
        let g0 = crate::er::erdos_renyi_gnp(200, 0.05, &mut rng);
        let jdd = joint_degree_distribution(&g0);
        let g1 = dk2_construct(&jdd, &mut rng);
        // Node and edge totals are approximately preserved.
        let m0 = g0.edge_count() as f64;
        let m1 = g1.edge_count() as f64;
        assert!((m1 - m0).abs() / m0 < 0.15, "m0 {m0} m1 {m1}");
        assert!((g1.node_count() as f64 - 200.0).abs() < 30.0, "n1 {}", g1.node_count());
    }

    #[test]
    fn dk2_empty_target() {
        let mut rng = StdRng::seed_from_u64(103);
        let g = dk2_construct(&JointDegreeDistribution::new(), &mut rng);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn dk2_inconsistent_target_degrades_gracefully() {
        let mut rng = StdRng::seed_from_u64(104);
        // One edge between degree-5 nodes implies 2/5 of a node per class —
        // the rounded histogram has no degree-5 nodes at all, so the entry
        // must be skipped rather than looping or panicking.
        let mut jdd = JointDegreeDistribution::new();
        jdd.insert((5, 5), 1);
        let g = dk2_construct(&jdd, &mut rng);
        assert!(g.check_invariants());
        assert_eq!(g.edge_count(), 0);

        // A perfect matching target realises fully: 100 degree-1 nodes.
        let mut jdd = JointDegreeDistribution::new();
        jdd.insert((1, 1), 50);
        let g = dk2_construct(&jdd, &mut rng);
        assert_eq!(g.node_count(), 100);
        assert!(g.edge_count() >= 49, "placed {}", g.edge_count());
    }
}
