//! Erdős–Rényi random graphs: `G(n, p)` and `G(n, m)`.
//!
//! The paper's ER dataset (Table VI) is `G(10000, p)` with `p ≈ 0.005`,
//! giving ~250k edges and a binomial degree distribution.

use crate::sampling::sample_distinct_pairs;
use pgb_graph::{Graph, GraphBuilder};
use rand::Rng;

/// `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`. Uses geometric skip-sampling over the linearised upper
/// triangle, so the cost is `O(n + m)` rather than `O(n²)`.
///
/// # Panics
/// Panics unless `p ∈ [0, 1]`.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n < 2 || p == 0.0 {
        return Graph::new(n);
    }
    let expected = (p * n as f64 * (n as f64 - 1.0) / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected + expected / 8 + 8);
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.push(u, v);
            }
        }
        return b.build().expect("complete graph ids are in range");
    }
    // Walk the upper triangle as a flat index stream with geometric jumps.
    let log1p = (1.0 - p).ln();
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log1p).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        let (row, col) = unflatten_upper(idx, n as u64);
        b.push(row as u32, col as u32);
        idx += 1;
    }
    b.build().expect("generated ids are in range")
}

/// Maps a flat index over the strict upper triangle of an `n × n` matrix
/// (row-major) back to `(row, col)` with `row < col`.
fn unflatten_upper(idx: u64, n: u64) -> (u64, u64) {
    // Row r owns (n - 1 - r) cells; find r by solving the quadratic
    // prefix-sum, then fix up any off-by-one from float rounding.
    let nf = n as f64;
    let idxf = idx as f64;
    let mut row = (nf - 0.5 - ((nf - 0.5) * (nf - 0.5) - 2.0 * idxf).max(0.0).sqrt()) as u64;
    loop {
        let start = row * (n - 1) - row * row.saturating_sub(1) / 2; // cells before row
        let len = n - 1 - row;
        if idx < start {
            row -= 1;
        } else if idx >= start + len {
            row += 1;
        } else {
            let col = row + 1 + (idx - start);
            return (row, col);
        }
    }
}

/// `G(n, m)`: a graph drawn uniformly from all graphs with exactly `m`
/// edges.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let pairs = sample_distinct_pairs(n, m, rng);
    Graph::from_edges(n, pairs).expect("sampled ids are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unflatten_enumerates_triangle() {
        let n = 7u64;
        let mut expected = Vec::new();
        for r in 0..n {
            for c in (r + 1)..n {
                expected.push((r, c));
            }
        }
        for (i, &(r, c)) in expected.iter().enumerate() {
            assert_eq!(unflatten_upper(i as u64, n), (r, c), "index {i}");
        }
    }

    #[test]
    fn gnp_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(60);
        assert_eq!(erdos_renyi_gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = StdRng::seed_from_u64(61);
        let (n, p) = (2_000usize, 0.01);
        let g = erdos_renyi_gnp(n, p, &mut rng);
        let expected = p * n as f64 * (n as f64 - 1.0) / 2.0;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            ((g.edge_count() as f64) - expected).abs() < 6.0 * sd,
            "m = {}, expected {expected}",
            g.edge_count()
        );
        assert!(g.check_invariants());
    }

    #[test]
    fn gnp_matches_paper_dataset_scale() {
        let mut rng = StdRng::seed_from_u64(62);
        // Table VI: |V| = 10000, |E| ≈ 250,278.
        let p = 250_278.0 / (10_000.0 * 9_999.0 / 2.0);
        let g = erdos_renyi_gnp(10_000, p, &mut rng);
        let m = g.edge_count() as f64;
        assert!((m - 250_278.0).abs() < 3_000.0, "m {m}");
    }

    #[test]
    fn gnm_exact_edges() {
        let mut rng = StdRng::seed_from_u64(63);
        let g = erdos_renyi_gnm(100, 500, &mut rng);
        assert_eq!(g.edge_count(), 500);
        assert!(g.check_invariants());
    }

    #[test]
    fn gnp_small_n() {
        let mut rng = StdRng::seed_from_u64(64);
        assert_eq!(erdos_renyi_gnp(0, 0.5, &mut rng).node_count(), 0);
        assert_eq!(erdos_renyi_gnp(1, 0.5, &mut rng).edge_count(), 0);
    }
}
