//! Property-based tests for the graph substrate's core invariants.

use pgb_graph::degree::{
    assortativity, degree_histogram, degree_sequence, joint_degree_distribution,
};
use pgb_graph::traversal::{bfs_distances, connected_components, UNREACHABLE};
use pgb_graph::{BitMatrix, Graph, GraphBuilder};
use proptest::prelude::*;

/// Strategy: a random edge set over up to 40 nodes (possibly with
/// duplicates and self-loops, which construction must clean up).
fn raw_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #[test]
    fn csr_matches_hashset_reference_model((n, edges) in raw_edges()) {
        // Reference model: the edge set as a plain HashSet of canonicalised
        // pairs, applying the same cleanup rules (self-loops dropped,
        // duplicates collapsed) the CSR construction promises.
        let mut reference: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for &(u, v) in &edges {
            if u != v {
                reference.insert(if u < v { (u, v) } else { (v, u) });
            }
        }
        let g = Graph::from_edges(n, edges).unwrap();
        prop_assert_eq!(g.edge_count(), reference.len());
        prop_assert!(g.check_invariants());
        let canon = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
        for u in 0..n as u32 {
            // Neighbour slices: sorted ascending, exactly the model's.
            let expected: Vec<u32> = (0..n as u32)
                .filter(|&v| v != u && reference.contains(&canon(u, v)))
                .collect();
            prop_assert_eq!(g.neighbors(u), &expected[..]);
            prop_assert_eq!(g.degree(u), expected.len());
        }
        // has_edge over the full pair square, including self-queries.
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let expected = u != v && reference.contains(&canon(u, v));
                prop_assert_eq!(g.has_edge(u, v), expected, "({}, {})", u, v);
            }
        }
    }

    #[test]
    fn csr_arrays_well_formed((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let (offsets, neighbors) = g.csr();
        prop_assert_eq!(offsets.len(), n + 1);
        prop_assert_eq!(offsets[0], 0);
        prop_assert_eq!(offsets[n] as usize, neighbors.len());
        prop_assert_eq!(neighbors.len(), 2 * g.edge_count());
        prop_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let degrees: Vec<u32> = g.degrees().collect();
        let from_offsets: Vec<u32> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        prop_assert_eq!(degrees, from_offsets);
    }

    #[test]
    fn construction_invariants((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        prop_assert!(g.check_invariants());
        // Handshake lemma.
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn builder_equals_from_edges((n, edges) in raw_edges()) {
        let g1 = Graph::from_edges(n, edges.clone()).unwrap();
        let mut b = GraphBuilder::new(n);
        b.extend(edges);
        let g2 = b.build().unwrap();
        prop_assert_eq!(g1.edge_vec(), g2.edge_vec());
    }

    #[test]
    fn edges_iterator_matches_has_edge((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let listed = g.edge_vec();
        prop_assert_eq!(listed.len(), g.edge_count());
        for &(u, v) in &listed {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
        // Exhaustive cross-check on small n.
        let mut count = 0;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if g.has_edge(u, v) {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, g.edge_count());
    }

    #[test]
    fn bitmatrix_roundtrip((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let m = BitMatrix::from_graph(&g);
        prop_assert_eq!(m.edge_count(), g.edge_count());
        prop_assert_eq!(m.to_graph().edge_vec(), g.edge_vec());
    }

    #[test]
    fn histogram_consistent_with_sequence((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let seq = degree_sequence(&g);
        let hist = degree_histogram(&g);
        let total: u64 = hist.iter().sum();
        prop_assert_eq!(total as usize, n);
        for (d, &c) in hist.iter().enumerate() {
            let observed = seq.iter().filter(|&&x| x as usize == d).count();
            prop_assert_eq!(observed as u64, c);
        }
    }

    #[test]
    fn jdd_mass_equals_edges((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let jdd = joint_degree_distribution(&g);
        let total: u64 = jdd.values().sum();
        prop_assert_eq!(total, g.edge_count() as u64);
        for &(a, b) in jdd.keys() {
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn assortativity_bounded((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        if let Some(r) = assortativity(&g) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn bfs_triangle_inequality((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let d0 = bfs_distances(&g, 0);
        // Every edge's endpoints differ by at most 1 in BFS distance.
        for (u, v) in g.edges() {
            let (du, dv) = (d0[u as usize], d0[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // Edge endpoints are always in the same component.
                prop_assert_eq!(du, dv);
            }
        }
    }

    #[test]
    fn components_partition_nodes((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let comps = connected_components(&g);
        let total: usize = comps.sizes.iter().sum();
        prop_assert_eq!(total, n);
        // Same-component iff mutually reachable (checked via BFS from 0).
        let d0 = bfs_distances(&g, 0);
        for (u, &du) in d0.iter().enumerate() {
            let same = comps.label[u] == comps.label[0];
            prop_assert_eq!(same, du != UNREACHABLE);
        }
    }

    #[test]
    fn induced_subgraph_preserves_edges((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        // Take the even nodes.
        let keep: Vec<u32> = (0..n as u32).filter(|u| u % 2 == 0).collect();
        let (sub, order) = g.induced_subgraph(&keep);
        prop_assert!(sub.check_invariants());
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(order[a as usize], order[b as usize]));
        }
        // Count edges of g with both endpoints kept.
        let expected = g
            .edges()
            .filter(|&(u, v)| u % 2 == 0 && v % 2 == 0)
            .count();
        prop_assert_eq!(sub.edge_count(), expected);
    }

    #[test]
    fn io_roundtrip_preserves_structure((n, edges) in raw_edges()) {
        let g = Graph::from_edges(n, edges).unwrap();
        let mut buf = Vec::new();
        pgb_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let (g2, labels) = pgb_graph::io::read_edge_list(buf.as_slice()).unwrap();
        // Isolated nodes are not representable in an edge list; compare via
        // the label mapping.
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        for (u, v) in g2.edges() {
            prop_assert!(g.has_edge(labels[u as usize] as u32, labels[v as usize] as u32));
        }
    }
}
