//! Plain-text edge-list reading and writing.
//!
//! The format matches the SNAP / Network Repository conventions the paper's
//! datasets ship in: one `u v` pair per line, `#` or `%` comment lines,
//! arbitrary whitespace separators. Node ids need not be contiguous — they
//! are compacted on read.

use crate::{Graph, GraphError, NodeId, Result};
use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parses an edge list from a reader.
///
/// Node labels are arbitrary `u64`s in the input and are remapped to dense
/// ids in first-appearance order; the mapping is returned alongside the
/// graph. Directed inputs collapse to undirected simple graphs (duplicate
/// and reverse pairs merge), matching PGB's preprocessing.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>)> {
    let mut ids: HashMap<u64, NodeId> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let intern = |label: u64, ids: &mut HashMap<u64, NodeId>, labels: &mut Vec<u64>| {
        *ids.entry(label).or_insert_with(|| {
            labels.push(label);
            (labels.len() - 1) as NodeId
        })
    };
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse { line: line_no + 1, content: trimmed.into() });
            }
        };
        let parse = |s: &str| {
            s.parse::<u64>()
                .map_err(|_| GraphError::Parse { line: line_no + 1, content: trimmed.into() })
        };
        let (a, b) = (parse(a)?, parse(b)?);
        let u = intern(a, &mut ids, &mut labels);
        let v = intern(b, &mut ids, &mut labels);
        edges.push((u, v));
    }
    let g = Graph::from_edges(labels.len(), edges)?;
    Ok((g, labels))
}

/// Parses an edge list from a string slice.
pub fn read_edge_list_str(s: &str) -> Result<(Graph, Vec<u64>)> {
    read_edge_list(s.as_bytes())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>)> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Writes `g` as a plain edge list (`u v` per line, dense ids, `u < v`).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", g.node_count(), g.edge_count())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_comments_and_whitespace() {
        let text = "# a comment\n% another\n10 20\n20\t30\n\n30 10\n";
        let (g, labels) = read_edge_list_str(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
    }

    #[test]
    fn collapses_directed_duplicates() {
        let (g, _) = read_edge_list_str("1 2\n2 1\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn drops_self_loops() {
        let (g, _) = read_edge_list_str("5 5\n5 6\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list_str("1 2\nnot numbers\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = read_edge_list_str("42\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_vec(), g.edge_vec());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pgb_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = Graph::from_edges(3, [(0, 2), (1, 2)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let (g2, _) = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.edge_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
