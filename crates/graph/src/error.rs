//! Error type shared by all `pgb-graph` operations.

use std::fmt;

/// Errors produced by graph construction, indexing, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A node id was outside `0..node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// The deduplicated edge count would overflow the `u32` CSR offset
    /// array (`2m` must fit in `u32`): the graph cannot be represented in
    /// this layout. Carries the offending edge count.
    TooManyEdges {
        /// The edge count that does not fit (`2 * edges > u32::MAX`).
        edges: usize,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// The malformed content.
        content: String,
    },
    /// An underlying I/O failure while reading or writing an edge list.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::TooManyEdges { edges } => {
                write!(
                    f,
                    "edge count {edges} overflows the u32 CSR offset array \
                     (at most {} edges fit)",
                    u32::MAX / 2
                )
            }
            GraphError::Parse { line, content } => {
                write!(f, "malformed edge-list line {line}: {content:?}")
            }
            GraphError::Io(e) => write!(f, "edge-list I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_node_out_of_range() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 5 };
        assert_eq!(e.to_string(), "node id 7 out of range for graph with 5 nodes");
    }

    #[test]
    fn display_too_many_edges() {
        let e = GraphError::TooManyEdges { edges: 0x8000_0000 };
        let s = e.to_string();
        assert!(s.contains("2147483648"), "{s}");
        assert!(s.contains("2147483647"), "{s}");
    }

    #[test]
    fn display_parse() {
        let e = GraphError::Parse { line: 3, content: "a b".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
