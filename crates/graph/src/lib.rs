//! # pgb-graph
//!
//! Graph substrate for the PGB benchmark: a compact undirected simple-graph
//! type plus the traversal, degree-extraction, and I/O routines every other
//! PGB crate builds on.
//!
//! The representation is a sorted adjacency-list structure (`Vec<Vec<u32>>`)
//! chosen for the benchmark's workload profile: graphs of 10³–10⁵ nodes that
//! are built once and then queried many times. Membership tests are binary
//! searches over sorted neighbour slices; iteration over edges and neighbours
//! is allocation-free.
//!
//! ## Quick start
//!
//! ```
//! use pgb_graph::Graph;
//!
//! // A triangle plus a pendant vertex.
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.degree(2), 3);
//! assert!(g.has_edge(0, 1));
//! assert!(!g.has_edge(0, 3));
//! ```

pub mod builder;
pub mod degree;
pub mod error;
pub mod graph;
pub mod io;
pub mod matrix;
pub mod traversal;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, NodeId};
pub use matrix::BitMatrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
