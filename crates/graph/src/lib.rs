//! # pgb-graph
//!
//! Graph substrate for the PGB benchmark: a compact undirected simple-graph
//! type plus the traversal, degree-extraction, and I/O routines every other
//! PGB crate builds on.
//!
//! The representation is compressed sparse row (CSR): one flat `offsets`
//! array (`n + 1` entries of `u32`) indexing into one flat `neighbors` array
//! (`2m` entries), with each node's segment sorted. The layout is chosen for
//! the benchmark's workload profile — graphs of 10³–10⁵ nodes that are built
//! once and then queried many times: the whole adjacency structure is two
//! allocations, full-graph scans (BFS sweeps, triangle passes, degree
//! extraction) walk contiguous memory, and membership tests are binary
//! searches over sorted neighbour slices. Graphs are immutable after
//! construction; incremental accumulation goes through [`GraphBuilder`],
//! which finalises into CSR with a single sort/dedup pass.
//!
//! ## Quick start
//!
//! ```
//! use pgb_graph::Graph;
//!
//! // A triangle plus a pendant vertex.
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.degree(2), 3);
//! assert!(g.has_edge(0, 1));
//! assert!(!g.has_edge(0, 3));
//! ```

pub mod builder;
pub mod degree;
pub mod error;
pub mod graph;
pub mod io;
pub mod matrix;
pub mod temporal;
pub mod traversal;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, NodeId};
pub use matrix::BitMatrix;
pub use temporal::{SnapshotSequence, TemporalEdge, Timestamp};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
