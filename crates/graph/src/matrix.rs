//! A dense symmetric bit matrix.
//!
//! Used where an algorithm genuinely reasons about the full adjacency matrix
//! (DER's quadtree exploration, tests that cross-check list-based results).
//! The benchmark's large graphs never need to materialise this: TmF is
//! implemented with its linear-cost sampling trick instead.

use crate::{Graph, NodeId};

/// A packed `n × n` symmetric boolean matrix with a zero diagonal.
///
/// Only the full square is stored (row-major, bit-packed into `u64` words);
/// `set` writes both `(i, j)` and `(j, i)` to keep it symmetric.
#[derive(Clone)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix { n, words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// Builds the adjacency matrix of `g`.
    pub fn from_graph(g: &Graph) -> Self {
        let mut m = BitMatrix::new(g.node_count());
        for (u, v) in g.edges() {
            m.set(u as usize, v as usize, true);
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> (usize, u64) {
        let word = i * self.words_per_row + j / 64;
        let mask = 1u64 << (j % 64);
        (word, mask)
    }

    /// Reads bit `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "index ({i}, {j}) out of range {}", self.n);
        let (word, mask) = self.index(i, j);
        self.bits[word] & mask != 0
    }

    /// Writes bit `(i, j)` and its mirror `(j, i)`. Diagonal writes are
    /// ignored (simple graphs have no self-loops).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(i < self.n && j < self.n, "index ({i}, {j}) out of range {}", self.n);
        if i == j {
            return;
        }
        for (a, b) in [(i, j), (j, i)] {
            let (word, mask) = self.index(a, b);
            if value {
                self.bits[word] |= mask;
            } else {
                self.bits[word] &= !mask;
            }
        }
    }

    /// Number of set bits in the upper triangle, i.e. the edge count of the
    /// graph this matrix represents.
    pub fn edge_count(&self) -> usize {
        let total: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        (total / 2) as usize
    }

    /// Number of edges inside the axis-aligned sub-block
    /// `rows × cols = [r0, r1) × [c0, c1)` of the matrix, counting each
    /// matrix cell once (callers handle the upper/lower-triangle bookkeeping;
    /// DER's quadtree works on the full square).
    pub fn block_ones(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> u64 {
        let mut count = 0u64;
        for i in r0..r1 {
            for j in c0..c1 {
                let (word, mask) = self.index(i, j);
                if self.bits[word] & mask != 0 {
                    count += 1;
                }
            }
        }
        count
    }

    /// Converts back into a [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut edges = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.get(i, j) {
                    edges.push((i as NodeId, j as NodeId));
                }
            }
        }
        Graph::from_edges(self.n, edges).expect("indices in range by construction")
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitMatrix({}x{}, {} edges)", self.n, self.n, self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn set_get_symmetric() {
        let mut m = BitMatrix::new(70); // spans two words per row
        m.set(3, 68, true);
        assert!(m.get(3, 68));
        assert!(m.get(68, 3));
        m.set(68, 3, false);
        assert!(!m.get(3, 68));
    }

    #[test]
    fn diagonal_writes_ignored() {
        let mut m = BitMatrix::new(4);
        m.set(2, 2, true);
        assert!(!m.get(2, 2));
        assert_eq!(m.edge_count(), 0);
    }

    #[test]
    fn roundtrip_graph() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let m = BitMatrix::from_graph(&g);
        assert_eq!(m.edge_count(), 3);
        let g2 = m.to_graph();
        assert_eq!(g2.edge_vec(), g.edge_vec());
    }

    #[test]
    fn block_ones_counts_cells() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let m = BitMatrix::from_graph(&g);
        // Full square counts each edge twice.
        assert_eq!(m.block_ones(0, 4, 0, 4), 4);
        // Upper-left quadrant holds the (0,1)/(1,0) pair.
        assert_eq!(m.block_ones(0, 2, 0, 2), 2);
        // Off-diagonal quadrant holds nothing.
        assert_eq!(m.block_ones(0, 2, 2, 4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitMatrix::new(2).get(0, 2);
    }
}
