//! Degree-based summaries: sequences, histograms, and the joint degree
//! distribution (dK-2 series).
//!
//! These are the *representations* used by DP-dK and DGG (degree information,
//! Fig. 1 of the paper) and the inputs to the degree queries Q4–Q6.

use crate::{Graph, NodeId};
use std::collections::HashMap;

/// The degree of every node, indexed by node id.
pub fn degree_sequence(g: &Graph) -> Vec<u32> {
    g.degrees().collect()
}

/// Nodes per chunk for the parallel degree scan: coarse enough that small
/// graphs take the inline path outright, fine enough that an 8-way budget
/// load-balances a 10⁵-node graph.
const DEGREE_CHUNK: usize = 16_384;

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
/// The vector has length `max_degree + 1` (or length 1 for an empty graph).
///
/// The scan is chunked over nodes and runs on the ambient
/// [`pgb_par::current_parallelism`] budget: per-chunk histograms are merged
/// in chunk order, and because the counts are exact integers the result is
/// bit-identical to [`degree_histogram_seq`] at any thread count.
pub fn degree_histogram(g: &Graph) -> Vec<u64> {
    let len = g.max_degree() + 1;
    let (offsets, _) = g.csr();
    pgb_par::par_fold_chunks(
        g.node_count(),
        DEGREE_CHUNK,
        || vec![0u64; len],
        |hist, range| {
            // Degrees straight off the CSR offsets: one subtraction per
            // node, no per-call bounds churn in the hot loop.
            for w in offsets[range.start..range.end + 1].windows(2) {
                hist[(w[1] - w[0]) as usize] += 1;
            }
        },
        |hist, other| {
            for (h, o) in hist.iter_mut().zip(other) {
                *h += o;
            }
        },
    )
}

/// The sequential reference implementation of [`degree_histogram`]: one
/// left-to-right pass over the degree sequence. Kept public so the
/// parallel-equivalence property tests and the `suite_scaling` bench can
/// compare against the pre-refactor path.
pub fn degree_histogram_seq(g: &Graph) -> Vec<u64> {
    let mut hist = vec![0u64; g.max_degree() + 1];
    for d in g.degrees() {
        hist[d as usize] += 1;
    }
    hist
}

/// Normalised degree distribution derived from a [`degree_histogram`]:
/// `p[d] = hist[d] / n`. Returns an empty vector when `n == 0`.
///
/// The degree queries Q5/Q6 both reduce a histogram through this pair of
/// `*_from_histogram` helpers, so the per-query path and the shared-pass
/// suite evaluator in `pgb-queries` produce bit-identical values from one
/// degree pass.
pub fn distribution_from_histogram(hist: &[u64], n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    hist.iter().map(|&c| c as f64 / n as f64).collect()
}

/// Population degree variance `E[d²] − E[d]²` derived from a
/// [`degree_histogram`]. 0.0 when `n == 0`.
pub fn variance_from_histogram(hist: &[u64], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let inv_n = 1.0 / n as f64;
    let (mut mean, mut sq) = (0.0f64, 0.0f64);
    for (d, &c) in hist.iter().enumerate() {
        mean += d as f64 * c as f64;
        sq += (d as f64) * (d as f64) * c as f64;
    }
    sq * inv_n - (mean * inv_n) * (mean * inv_n)
}

/// Normalised degree distribution: `p[d]` = fraction of nodes with degree
/// `d`. Returns an empty vector for the empty graph.
pub fn degree_distribution(g: &Graph) -> Vec<f64> {
    distribution_from_histogram(&degree_histogram(g), g.node_count())
}

/// Sample variance-style degree variance `E[d²] − E[d]²` (population form,
/// as used by the Q5 "degree variance" query). 0.0 for graphs with no nodes.
pub fn degree_variance(g: &Graph) -> f64 {
    variance_from_histogram(&degree_histogram(g), g.node_count())
}

/// The dK-2 series (joint degree distribution): for every edge `{u, v}`
/// the unordered degree pair `(min(dᵤ, dᵥ), max(dᵤ, dᵥ))` is counted once.
///
/// The total count over all keys equals `edge_count()`.
pub type JointDegreeDistribution = HashMap<(u32, u32), u64>;

/// Computes the joint degree distribution of `g`.
pub fn joint_degree_distribution(g: &Graph) -> JointDegreeDistribution {
    let deg = degree_sequence(g);
    let mut jdd = HashMap::new();
    for (u, v) in g.edges() {
        let (a, b) = (deg[u as usize], deg[v as usize]);
        let key = if a <= b { (a, b) } else { (b, a) };
        *jdd.entry(key).or_insert(0) += 1;
    }
    jdd
}

/// Recovers a degree histogram from a joint degree distribution.
///
/// Each JDD entry `((k1, k2), c)` contributes `c` edge-endpoints at degree
/// `k1` and `c` at degree `k2`; a node of degree `k` owns `k` endpoints, so
/// `hist[k] = endpoints[k] / k` (rounded). This is the reconstruction step
/// DP-dK uses after perturbing the dK-2 series.
pub fn histogram_from_jdd(jdd: &JointDegreeDistribution) -> Vec<u64> {
    let max_k = jdd.keys().map(|&(_, b)| b).max().unwrap_or(0) as usize;
    let mut endpoints = vec![0u64; max_k + 1];
    for (&(k1, k2), &c) in jdd {
        endpoints[k1 as usize] += c;
        endpoints[k2 as usize] += c;
    }
    let mut hist = vec![0u64; max_k + 1];
    for k in 1..=max_k {
        // Round to the nearest integer node count.
        hist[k] = (endpoints[k] + k as u64 / 2) / k as u64;
    }
    hist
}

/// Expands a degree histogram into a degree sequence (ascending degrees).
pub fn sequence_from_histogram(hist: &[u64]) -> Vec<u32> {
    let mut seq = Vec::new();
    for (d, &count) in hist.iter().enumerate() {
        for _ in 0..count {
            seq.push(d as u32);
        }
    }
    seq
}

/// Degree (Pearson) assortativity coefficient: the correlation of the
/// degrees at the two endpoints of a uniformly random edge (query Q14).
///
/// Returns `None` when the graph has no edges or zero degree variance over
/// edge endpoints (e.g. regular graphs), where the coefficient is undefined.
pub fn assortativity(g: &Graph) -> Option<f64> {
    let m = g.edge_count();
    if m == 0 {
        return None;
    }
    let deg = degree_sequence(g);
    // Standard formulation over the 2m ordered endpoint pairs.
    let (mut s_xy, mut s_x, mut s_x2) = (0.0f64, 0.0f64, 0.0f64);
    for (u, v) in g.edges() {
        let (du, dv) = (deg[u as usize] as f64, deg[v as usize] as f64);
        s_xy += 2.0 * du * dv;
        s_x += du + dv;
        s_x2 += du * du + dv * dv;
    }
    let inv_2m = 1.0 / (2.0 * m as f64);
    let num = inv_2m * s_xy - (inv_2m * s_x).powi(2);
    let den = inv_2m * s_x2 - (inv_2m * s_x).powi(2);
    if den.abs() < 1e-12 {
        None
    } else {
        Some(num / den)
    }
}

/// An entry of a node id paired with its degree; helper for degree-ordered
/// processing in BTER and Chung–Lu.
pub fn nodes_by_degree_desc(g: &Graph) -> Vec<(NodeId, u32)> {
    let mut v: Vec<(NodeId, u32)> = g.nodes().map(|u| (u, g.degree(u) as u32)).collect();
    v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn star5() -> Graph {
        Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn histogram_of_star() {
        let hist = degree_histogram(&star5());
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn distribution_sums_to_one() {
        let p = degree_distribution(&star5());
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_of_empty_graph() {
        assert!(degree_distribution(&Graph::new(0)).is_empty());
    }

    #[test]
    fn variance_of_regular_graph_is_zero() {
        let cycle = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(degree_variance(&cycle).abs() < 1e-12);
    }

    #[test]
    fn variance_of_star() {
        // degrees 4,1,1,1,1: mean 1.6, E[d^2] = (16+4)/5 = 4 -> var = 1.44
        assert!((degree_variance(&star5()) - 1.44).abs() < 1e-12);
    }

    #[test]
    fn jdd_total_equals_edge_count() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        let jdd = joint_degree_distribution(&g);
        let total: u64 = jdd.values().sum();
        assert_eq!(total, g.edge_count() as u64);
    }

    #[test]
    fn jdd_of_star() {
        let jdd = joint_degree_distribution(&star5());
        assert_eq!(jdd.len(), 1);
        assert_eq!(jdd[&(1, 4)], 4);
    }

    #[test]
    fn histogram_roundtrip_through_jdd() {
        let g = star5();
        let jdd = joint_degree_distribution(&g);
        let hist = histogram_from_jdd(&jdd);
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
    }

    #[test]
    fn sequence_from_histogram_expands() {
        let seq = sequence_from_histogram(&[0, 2, 1]);
        assert_eq!(seq, vec![1, 1, 2]);
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        let r = assortativity(&star5()).unwrap();
        assert!(r < 0.0, "stars are maximally disassortative, got {r}");
    }

    #[test]
    fn assortativity_undefined_for_regular_and_empty() {
        let cycle = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(assortativity(&cycle).is_none());
        assert!(assortativity(&Graph::new(3)).is_none());
    }

    #[test]
    fn assortativity_in_valid_range() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]).unwrap();
        let r = assortativity(&g).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn nodes_by_degree_desc_order() {
        let v = nodes_by_degree_desc(&star5());
        assert_eq!(v[0], (0, 4));
        assert_eq!(v.len(), 5);
        assert!(v.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
