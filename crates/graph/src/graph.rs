//! The central [`Graph`] type: an undirected simple graph in compressed
//! sparse row (CSR) layout with sorted neighbour segments.

use crate::{GraphError, Result};

/// Node identifier. PGB graphs have at most a few hundred thousand nodes, so
/// `u32` halves the memory footprint of adjacency storage relative to `usize`.
pub type NodeId = u32;

/// An undirected simple graph (no self-loops, no parallel edges).
///
/// Nodes are the contiguous range `0..node_count()`. Storage is compressed
/// sparse row: one flat `offsets` array (length `n + 1`) indexing into one
/// flat `neighbors` array (length `2m`), so the whole adjacency structure is
/// two allocations regardless of node count, neighbour slices of consecutive
/// nodes are contiguous in memory, and a full adjacency scan is a single
/// linear pass over one buffer. Each node's segment is kept sorted, which
/// makes [`Graph::has_edge`] a binary search and lets triangle counting and
/// set intersections run over sorted slices.
///
/// A `Graph` is immutable once constructed: build it with
/// [`Graph::from_edges`] or accumulate edges incrementally through
/// [`crate::GraphBuilder`], which finalises into CSR with one sort/dedup
/// pass. (The pre-CSR `add_edge`/`remove_edge` entry points were removed —
/// per-edge mutation of a flat layout would be `O(m)` per call, and no
/// benchmark component mutates a graph after construction.)
#[derive(Clone)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` is node `u`'s segment in `neighbors`.
    /// Always `n + 1` entries; `offsets[n] == 2m`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour segments, `2m` entries.
    neighbors: Vec<NodeId>,
    m: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], neighbors: Vec::new(), m: 0 }
    }

    /// Builds a graph from an edge iterator.
    ///
    /// Self-loops are dropped and duplicate edges collapsed, mirroring the
    /// preprocessing PGB applies to every dataset (the paper evaluates simple
    /// undirected graphs only). Returns an error if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                continue;
            }
            pairs.push(if u < v { (u, v) } else { (v, u) });
        }
        pairs.sort_unstable();
        pairs.dedup();
        let m = pairs.len();
        assert!(2 * m <= u32::MAX as usize, "graph too large for u32 CSR offsets");
        // Counting sort into CSR: degree counts, prefix sum, then one fill
        // pass. `pairs` is sorted lexicographically, so each node's segment
        // comes out sorted without a per-segment sort: for node w, every
        // back-edge write (from a pair `(u, w)`, `u < w`) happens before
        // every forward write (from a pair `(w, v)`, `v > w`), and both
        // write subsequences are increasing.
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &pairs {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as NodeId; 2 * m];
        for &(u, v) in &pairs {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        Ok(Graph { offsets, neighbors, m })
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Sorted neighbour slice of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// The raw CSR arrays `(offsets, neighbors)`: `offsets` has `n + 1`
    /// entries and node `u`'s sorted neighbour segment is
    /// `neighbors[offsets[u] as usize..offsets[u + 1] as usize]`.
    ///
    /// Zero-copy view for consumers that walk the whole structure (kernels,
    /// serialisation) without per-node slicing.
    #[inline]
    pub fn csr(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.neighbors)
    }

    /// Whether the edge `{u, v}` is present. Self-queries return `false`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over all edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(|u| {
            let nbrs = self.neighbors(u);
            // Each neighbour segment is sorted, so the `v > u` suffix starts
            // at the partition point; this yields every undirected edge once.
            let start = nbrs.partition_point(|&v| v <= u);
            nbrs[start..].iter().map(move |&v| (u, v))
        })
    }

    /// Collects the edges into a vector (`u < v` per pair, sorted).
    pub fn edge_vec(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Iterates over all node degrees in node-id order — one pass over the
    /// offsets array, no per-node indexing.
    pub fn degrees(&self) -> impl Iterator<Item = u32> + '_ {
        self.offsets.windows(2).map(|w| w[1] - w[0])
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.degrees().max().unwrap_or(0) as usize
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.node_count() as f64
        }
    }

    /// Edge density `2m / (n (n - 1))` (0.0 for graphs with < 2 nodes).
    pub fn density(&self) -> f64 {
        let n = self.node_count() as f64;
        if n < 2.0 {
            0.0
        } else {
            2.0 * self.m as f64 / (n * (n - 1.0))
        }
    }

    /// Extracts the subgraph induced by `nodes`, relabelling them
    /// `0..nodes.len()` in the given order. Returns the subgraph and the
    /// mapping from new ids to original ids.
    ///
    /// Duplicate entries in `nodes` are ignored after the first occurrence.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_id = vec![u32::MAX; self.node_count()];
        let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for &u in nodes {
            if new_id[u as usize] == u32::MAX {
                new_id[u as usize] = order.len() as u32;
                order.push(u);
            }
        }
        let mut edges = Vec::new();
        for &u in &order {
            let nu = new_id[u as usize];
            for &v in self.neighbors(u) {
                let nv = new_id[v as usize];
                if nv != u32::MAX && nu < nv {
                    edges.push((nu, nv));
                }
            }
        }
        let sub = Graph::from_edges(order.len(), edges)
            .expect("relabelled ids are in range by construction");
        (sub, order)
    }

    /// Consistency check used by tests and `debug_assert!`s: well-formed
    /// CSR (monotone offsets closing at `neighbors.len()`), sorted and
    /// deduplicated segments, symmetric adjacency with no self-loops, and
    /// `m` matching the stored structure.
    pub fn check_invariants(&self) -> bool {
        let n = self.node_count();
        if self.offsets[0] != 0
            || self.offsets[n] as usize != self.neighbors.len()
            || self.offsets.windows(2).any(|w| w[0] > w[1])
        {
            return false;
        }
        for u in self.nodes() {
            let nbrs = self.neighbors(u);
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return false; // unsorted or duplicate
            }
            for &v in nbrs {
                if v == u || v as usize >= n {
                    return false;
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return false; // asymmetric
                }
            }
        }
        self.neighbors.len() == 2 * self.m
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_dedups_and_drops_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 0), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.check_invariants());
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn degree_and_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn csr_layout_is_flat_and_sorted() {
        let g = triangle_plus_pendant();
        let (offsets, neighbors) = g.csr();
        assert_eq!(offsets, &[0, 2, 4, 7, 8]);
        assert_eq!(neighbors, &[1, 2, 0, 2, 0, 1, 3, 2]);
        assert_eq!(offsets.len(), g.node_count() + 1);
        assert_eq!(neighbors.len(), 2 * g.edge_count());
    }

    #[test]
    fn segments_sorted_without_per_segment_sort() {
        // Edges deliberately out of order: the counting-sort fill must
        // still leave every segment strictly increasing.
        let g = Graph::from_edges(6, [(5, 0), (3, 1), (0, 4), (2, 0), (1, 0), (4, 3)]).unwrap();
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "node {u}: {nbrs:?}");
        }
        assert!(g.check_invariants());
    }

    #[test]
    fn has_edge_both_orders() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn degrees_iterator_matches_degree() {
        let g = triangle_plus_pendant();
        let via_iter: Vec<u32> = g.degrees().collect();
        let via_calls: Vec<u32> = g.nodes().map(|u| g.degree(u) as u32).collect();
        assert_eq!(via_iter, via_calls);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_plus_pendant();
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn density_and_average_degree() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert!((g.density() - 2.0 * 2.0 / 12.0).abs() < 1e-12);
        assert_eq!(Graph::new(0).average_degree(), 0.0);
        assert_eq!(Graph::new(1).density(), 0.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle_plus_pendant();
        let (sub, order) = g.induced_subgraph(&[2, 3, 0]);
        assert_eq!(order, vec![2, 3, 0]);
        assert_eq!(sub.node_count(), 3);
        // edges {2,3} -> {0,1} and {2,0} -> {0,2}
        assert_eq!(sub.edge_vec(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = triangle_plus_pendant();
        let (sub, order) = g.induced_subgraph(&[1, 1, 2]);
        assert_eq!(order, vec![1, 2]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn empty_graph_is_consistent() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.check_invariants());
        let d = Graph::default();
        assert_eq!(d.node_count(), 0);
        assert!(d.check_invariants());
    }

    #[test]
    fn max_degree_on_star() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(g.max_degree(), 4);
    }
}
