//! The central [`Graph`] type: an undirected simple graph in compressed
//! sparse row (CSR) layout with sorted neighbour segments.

use crate::{GraphError, Result};

/// Node identifier. PGB graphs have at most a few hundred thousand nodes, so
/// `u32` halves the memory footprint of adjacency storage relative to `usize`.
pub type NodeId = u32;

/// An undirected simple graph (no self-loops, no parallel edges).
///
/// Nodes are the contiguous range `0..node_count()`. Storage is compressed
/// sparse row: one flat `offsets` array (length `n + 1`) indexing into one
/// flat `neighbors` array (length `2m`), so the whole adjacency structure is
/// two allocations regardless of node count, neighbour slices of consecutive
/// nodes are contiguous in memory, and a full adjacency scan is a single
/// linear pass over one buffer. Each node's segment is kept sorted, which
/// makes [`Graph::has_edge`] a binary search and lets triangle counting and
/// set intersections run over sorted slices.
///
/// A `Graph` is immutable once constructed: build it with
/// [`Graph::from_edges`] or accumulate edges incrementally through
/// [`crate::GraphBuilder`], which finalises into CSR with one sort/dedup
/// pass. (The pre-CSR `add_edge`/`remove_edge` entry points were removed —
/// per-edge mutation of a flat layout would be `O(m)` per call, and no
/// benchmark component mutates a graph after construction.)
#[derive(Clone)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` is node `u`'s segment in `neighbors`.
    /// Always `n + 1` entries; `offsets[n] == 2m`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour segments, `2m` entries.
    neighbors: Vec<NodeId>,
    m: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], neighbors: Vec::new(), m: 0 }
    }

    /// Builds a graph from an edge iterator.
    ///
    /// Self-loops are dropped and duplicate edges collapsed, mirroring the
    /// preprocessing PGB applies to every dataset (the paper evaluates simple
    /// undirected graphs only). Returns an error if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                continue;
            }
            pairs.push(if u < v { (u, v) } else { (v, u) });
        }
        pairs.sort_unstable();
        pairs.dedup();
        Self::from_sorted_unique_pairs(n, &pairs)
    }

    /// Checks that `m` edges fit the `u32` CSR offset array (`2m` entries
    /// must be indexable by `u32`). Factored out so the boundary is unit
    /// testable without allocating a multi-gigabyte edge list.
    pub(crate) fn csr_capacity_check(m: usize) -> Result<()> {
        // `m <= u32::MAX / 2` ⇔ `2m <= u32::MAX` (2m is even), phrased
        // without the doubled multiplication so the check itself cannot
        // overflow `usize`.
        if m > (u32::MAX / 2) as usize {
            Err(GraphError::TooManyEdges { edges: m })
        } else {
            Ok(())
        }
    }

    /// Builds a graph from an owned edge vector with the sort/dedup work
    /// spread over up to `threads` workers (0 ⇒ available parallelism).
    ///
    /// Semantically identical to [`Graph::from_edges`] — same
    /// normalisation, same first-in-input-order range error, same final
    /// CSR arrays — because the parallel path ends in the same sorted
    /// deduplicated pair list. Small inputs (or `threads <= 1`) take the
    /// serial path outright.
    pub fn from_edge_vec(
        n: usize,
        mut pairs: Vec<(NodeId, NodeId)>,
        threads: usize,
    ) -> Result<Self> {
        /// Below this many pushed edges the serial path wins: chunk
        /// handoff and the k-way merge cost more than they save.
        const PARALLEL_MIN_EDGES: usize = 1 << 15;
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
        if threads <= 1 || pairs.len() < PARALLEL_MIN_EDGES {
            return Self::from_edges(n, pairs);
        }

        // Dropped self-loops become a sentinel that sorts past every valid
        // normalised pair (valid pairs have u < v, the sentinel has u == v),
        // so they can be skipped during the merge without compacting chunks.
        const SENTINEL: (NodeId, NodeId) = (NodeId::MAX, NodeId::MAX);
        let chunk_len = pairs.len().div_ceil(threads);
        // Phase 1+2 per chunk: validate + normalise in place, then sort the
        // chunk. Each chunk reports its first out-of-range edge (by index)
        // so the error, if any, matches the serial path's input-order pick.
        let errors: Vec<std::sync::OnceLock<(usize, GraphError)>> =
            (0..threads).map(|_| std::sync::OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for (ci, chunk) in pairs.chunks_mut(chunk_len).enumerate() {
                let slot = &errors[ci];
                scope.spawn(move || {
                    for (i, pair) in chunk.iter_mut().enumerate() {
                        let (u, v) = *pair;
                        let bad = if u as usize >= n {
                            Some(u)
                        } else if v as usize >= n {
                            Some(v)
                        } else {
                            None
                        };
                        if let Some(node) = bad {
                            let _ = slot
                                .set((ci * chunk_len + i, GraphError::NodeOutOfRange { node, n }));
                            break;
                        }
                        *pair = if u == v {
                            SENTINEL
                        } else if u < v {
                            (u, v)
                        } else {
                            (v, u)
                        };
                    }
                    if slot.get().is_none() {
                        chunk.sort_unstable();
                    }
                });
            }
        });
        if let Some((_, e)) =
            errors.into_iter().filter_map(|slot| slot.into_inner()).min_by_key(|&(index, _)| index)
        {
            return Err(e);
        }

        // Phase 3: k-way merge of the sorted runs, deduplicating and
        // skipping sentinels — the output is exactly `sort + dedup` of the
        // normalised input, so the CSR fill below sees the same pair list
        // as the serial path. The scan over run heads is O(k) per element
        // with k ≤ `threads` runs (cheap next to the parallel sorts); once
        // a single run remains its tail is drained in one bulk pass.
        let runs: Vec<&[(NodeId, NodeId)]> = pairs.chunks(chunk_len).collect();
        let mut heads = vec![0usize; runs.len()];
        let mut active: Vec<usize> = (0..runs.len()).collect();
        let mut merged: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs.len());
        let push = |merged: &mut Vec<(NodeId, NodeId)>, pair: (NodeId, NodeId)| {
            if pair != SENTINEL && merged.last() != Some(&pair) {
                merged.push(pair);
            }
        };
        active.retain(|&r| !runs[r].is_empty());
        while active.len() > 1 {
            let (mut best_r, mut best_p) = (active[0], runs[active[0]][heads[active[0]]]);
            for &r in &active[1..] {
                let p = runs[r][heads[r]];
                if p < best_p {
                    (best_r, best_p) = (r, p);
                }
            }
            heads[best_r] += 1;
            push(&mut merged, best_p);
            if heads[best_r] == runs[best_r].len() {
                active.retain(|&r| r != best_r);
            }
        }
        if let Some(&r) = active.first() {
            for &pair in &runs[r][heads[r]..] {
                push(&mut merged, pair);
            }
        }
        Self::from_sorted_unique_pairs(n, &merged)
    }

    /// Constructs the CSR arrays directly from a replayable edge stream,
    /// never materialising the unsorted edge list. See
    /// [`crate::GraphBuilder::build_streaming`] for the public entry point
    /// and the replay contract.
    pub(crate) fn from_edge_stream<F>(n: usize, mut emit: F) -> Result<Self>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        // Pass 1: count each endpoint's occurrences (self-loops dropped,
        // duplicates still counted — they are removed after the per-segment
        // sort below). The running total is checked against the CSR offset
        // capacity *before* degree counters can saturate: while the total
        // stays within `u32::MAX / 2` pushed edges, no endpoint count can
        // exceed `u32::MAX`.
        let mut counts = vec![0u32; n];
        let mut total: u64 = 0;
        let mut err: Option<GraphError> = None;
        emit(&mut |u, v| {
            if err.is_some() {
                return;
            }
            if u as usize >= n {
                err = Some(GraphError::NodeOutOfRange { node: u, n });
                return;
            }
            if v as usize >= n {
                err = Some(GraphError::NodeOutOfRange { node: v, n });
                return;
            }
            if u == v {
                return;
            }
            total += 1;
            if total > (u32::MAX / 2) as u64 {
                err = Some(GraphError::TooManyEdges { edges: total as usize });
                return;
            }
            counts[u as usize] += 1;
            counts[v as usize] += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }

        // Offsets over the *pre-dedup* counts; the fill below lands every
        // endpoint, and the compaction pass re-derives the final offsets.
        let mut offsets = vec![0u32; n + 1];
        for (i, &c) in counts.iter().enumerate() {
            offsets[i + 1] = offsets[i] + c;
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as NodeId; 2 * total as usize];

        // Pass 2: replay the stream into the segments. The replay contract
        // (identical sequence both calls) is enforced by re-counting.
        let mut seen: u64 = 0;
        emit(&mut |u, v| {
            if u == v || u as usize >= n || v as usize >= n {
                return;
            }
            seen += 1;
            if seen > total {
                return; // diverged; caught by the assert below
            }
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        });
        assert_eq!(
            seen, total,
            "build_streaming edge source must emit the identical sequence on both passes"
        );

        // Pass 3: sort each segment, drop duplicates, and compact the
        // neighbour array in place — the result is exactly the CSR that
        // `from_edges` produces for the same stream.
        let mut write = 0usize;
        let mut final_offsets = vec![0u32; n + 1];
        for u in 0..n {
            let (start, end) = (offsets[u] as usize, offsets[u + 1] as usize);
            neighbors[start..end].sort_unstable();
            let seg_write = write;
            for i in start..end {
                let v = neighbors[i];
                if write == seg_write || neighbors[write - 1] != v {
                    neighbors[write] = v;
                    write += 1;
                }
            }
            final_offsets[u + 1] = write as u32;
        }
        neighbors.truncate(write);
        neighbors.shrink_to_fit();
        debug_assert_eq!(write % 2, 0);
        Ok(Graph { offsets: final_offsets, neighbors, m: write / 2 })
    }

    /// The shared CSR construction tail: counting sort into the flat
    /// arrays. `pairs` must be normalised (`u < v`), lexicographically
    /// sorted, and deduplicated — then each node's segment comes out sorted
    /// without a per-segment sort: for node w, every back-edge write (from
    /// a pair `(u, w)`, `u < w`) happens before every forward write (from a
    /// pair `(w, v)`, `v > w`), and both write subsequences are increasing.
    fn from_sorted_unique_pairs(n: usize, pairs: &[(NodeId, NodeId)]) -> Result<Self> {
        let m = pairs.len();
        Self::csr_capacity_check(m)?;
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in pairs {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as NodeId; 2 * m];
        for &(u, v) in pairs {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        Ok(Graph { offsets, neighbors, m })
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Heap footprint of the CSR arrays in bytes (allocated capacity, not
    /// just occupied length), so the benchmark runner can report the peak
    /// graph memory per cell.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.capacity() + self.neighbors.capacity()) * std::mem::size_of::<u32>()
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Sorted neighbour slice of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// The raw CSR arrays `(offsets, neighbors)`: `offsets` has `n + 1`
    /// entries and node `u`'s sorted neighbour segment is
    /// `neighbors[offsets[u] as usize..offsets[u + 1] as usize]`.
    ///
    /// Zero-copy view for consumers that walk the whole structure (kernels,
    /// serialisation) without per-node slicing.
    #[inline]
    pub fn csr(&self) -> (&[u32], &[NodeId]) {
        (&self.offsets, &self.neighbors)
    }

    /// Whether the edge `{u, v}` is present. Self-queries return `false`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over all edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(|u| {
            let nbrs = self.neighbors(u);
            // Each neighbour segment is sorted, so the `v > u` suffix starts
            // at the partition point; this yields every undirected edge once.
            let start = nbrs.partition_point(|&v| v <= u);
            nbrs[start..].iter().map(move |&v| (u, v))
        })
    }

    /// Collects the edges into a vector (`u < v` per pair, sorted).
    pub fn edge_vec(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Iterates over all node degrees in node-id order — one pass over the
    /// offsets array, no per-node indexing.
    pub fn degrees(&self) -> impl Iterator<Item = u32> + '_ {
        self.offsets.windows(2).map(|w| w[1] - w[0])
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.degrees().max().unwrap_or(0) as usize
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.node_count() as f64
        }
    }

    /// Edge density `2m / (n (n - 1))` (0.0 for graphs with < 2 nodes).
    pub fn density(&self) -> f64 {
        let n = self.node_count() as f64;
        if n < 2.0 {
            0.0
        } else {
            2.0 * self.m as f64 / (n * (n - 1.0))
        }
    }

    /// Extracts the subgraph induced by `nodes`, relabelling them
    /// `0..nodes.len()` in the given order. Returns the subgraph and the
    /// mapping from new ids to original ids.
    ///
    /// Duplicate entries in `nodes` are ignored after the first occurrence.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_id = vec![u32::MAX; self.node_count()];
        let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for &u in nodes {
            if new_id[u as usize] == u32::MAX {
                new_id[u as usize] = order.len() as u32;
                order.push(u);
            }
        }
        let mut edges = Vec::new();
        for &u in &order {
            let nu = new_id[u as usize];
            for &v in self.neighbors(u) {
                let nv = new_id[v as usize];
                if nv != u32::MAX && nu < nv {
                    edges.push((nu, nv));
                }
            }
        }
        let sub = Graph::from_edges(order.len(), edges)
            .expect("relabelled ids are in range by construction");
        (sub, order)
    }

    /// Consistency check used by tests and `debug_assert!`s: well-formed
    /// CSR (monotone offsets closing at `neighbors.len()`), sorted and
    /// deduplicated segments, symmetric adjacency with no self-loops, and
    /// `m` matching the stored structure.
    pub fn check_invariants(&self) -> bool {
        let n = self.node_count();
        if self.offsets[0] != 0
            || self.offsets[n] as usize != self.neighbors.len()
            || self.offsets.windows(2).any(|w| w[0] > w[1])
        {
            return false;
        }
        for u in self.nodes() {
            let nbrs = self.neighbors(u);
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return false; // unsorted or duplicate
            }
            for &v in nbrs {
                if v == u || v as usize >= n {
                    return false;
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return false; // asymmetric
                }
            }
        }
        self.neighbors.len() == 2 * self.m
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_dedups_and_drops_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 0), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.check_invariants());
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn degree_and_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn csr_layout_is_flat_and_sorted() {
        let g = triangle_plus_pendant();
        let (offsets, neighbors) = g.csr();
        assert_eq!(offsets, &[0, 2, 4, 7, 8]);
        assert_eq!(neighbors, &[1, 2, 0, 2, 0, 1, 3, 2]);
        assert_eq!(offsets.len(), g.node_count() + 1);
        assert_eq!(neighbors.len(), 2 * g.edge_count());
    }

    #[test]
    fn segments_sorted_without_per_segment_sort() {
        // Edges deliberately out of order: the counting-sort fill must
        // still leave every segment strictly increasing.
        let g = Graph::from_edges(6, [(5, 0), (3, 1), (0, 4), (2, 0), (1, 0), (4, 3)]).unwrap();
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "node {u}: {nbrs:?}");
        }
        assert!(g.check_invariants());
    }

    #[test]
    fn has_edge_both_orders() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn degrees_iterator_matches_degree() {
        let g = triangle_plus_pendant();
        let via_iter: Vec<u32> = g.degrees().collect();
        let via_calls: Vec<u32> = g.nodes().map(|u| g.degree(u) as u32).collect();
        assert_eq!(via_iter, via_calls);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_plus_pendant();
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn density_and_average_degree() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert!((g.density() - 2.0 * 2.0 / 12.0).abs() < 1e-12);
        assert_eq!(Graph::new(0).average_degree(), 0.0);
        assert_eq!(Graph::new(1).density(), 0.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle_plus_pendant();
        let (sub, order) = g.induced_subgraph(&[2, 3, 0]);
        assert_eq!(order, vec![2, 3, 0]);
        assert_eq!(sub.node_count(), 3);
        // edges {2,3} -> {0,1} and {2,0} -> {0,2}
        assert_eq!(sub.edge_vec(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = triangle_plus_pendant();
        let (sub, order) = g.induced_subgraph(&[1, 1, 2]);
        assert_eq!(order, vec![1, 2]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn empty_graph_is_consistent() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.check_invariants());
        let d = Graph::default();
        assert_eq!(d.node_count(), 0);
        assert!(d.check_invariants());
    }

    #[test]
    fn from_edge_vec_matches_from_edges() {
        // Deterministic pseudo-random edge soup with duplicates, reversed
        // pairs, and self-loops — both construction paths must agree on
        // the exact CSR arrays. Large enough to cross the parallel
        // threshold (2^15 pushed edges).
        let n = 500u32;
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut edges = Vec::with_capacity(40_000);
        for _ in 0..40_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            edges.push(((x % n as u64) as u32, ((x >> 32) % n as u64) as u32));
        }
        let serial = Graph::from_edges(n as usize, edges.clone()).unwrap();
        for threads in [1, 2, 8] {
            let parallel = Graph::from_edge_vec(n as usize, edges.clone(), threads).unwrap();
            assert_eq!(parallel.csr(), serial.csr(), "threads = {threads}");
            assert!(parallel.check_invariants());
        }
    }

    #[test]
    fn from_edge_vec_reports_first_error_in_input_order() {
        let mut edges: Vec<(u32, u32)> = (0..40_000u32).map(|i| (i % 50, (i + 1) % 50)).collect();
        edges[777] = (3, 99); // first bad edge
        edges[30_000] = (98, 0); // later bad edge, likely another chunk
        let err = Graph::from_edge_vec(50, edges, 4).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 99, n: 50 }), "{err:?}");
    }

    #[test]
    fn from_edge_vec_small_input_takes_serial_path() {
        let g = Graph::from_edge_vec(4, vec![(0, 1), (1, 0), (2, 2), (2, 3)], 8).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.check_invariants());
    }

    #[test]
    fn csr_capacity_boundary() {
        // `2m` must fit in u32: m = 0x7FFF_FFFF is the last representable
        // edge count, m = 0x8000_0000 the first rejected one. Exercised on
        // the check itself — building a 2^31-edge list needs ~16 GiB.
        assert!(Graph::csr_capacity_check(0x7FFF_FFFF).is_ok());
        let err = Graph::csr_capacity_check(0x8000_0000).unwrap_err();
        assert!(matches!(err, GraphError::TooManyEdges { edges: 0x8000_0000 }), "{err:?}");
    }

    #[test]
    fn heap_bytes_counts_both_csr_arrays() {
        let g = triangle_plus_pendant();
        // offsets: 5 entries, neighbors: 8 entries, 4 bytes each; capacity
        // may exceed length, so this is a lower bound.
        assert!(g.heap_bytes() >= (5 + 8) * 4, "{}", g.heap_bytes());
        assert_eq!(Graph::new(0).heap_bytes() % 4, 0);
    }

    #[test]
    fn from_edge_stream_matches_from_edges() {
        // Same deterministic edge soup as the from_edge_vec test: the
        // streaming path must land on byte-identical CSR arrays.
        let n = 500u32;
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut edges = Vec::with_capacity(40_000);
        for _ in 0..40_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            edges.push(((x % n as u64) as u32, ((x >> 32) % n as u64) as u32));
        }
        let serial = Graph::from_edges(n as usize, edges.clone()).unwrap();
        let streamed = Graph::from_edge_stream(n as usize, |sink| {
            for &(u, v) in &edges {
                sink(u, v);
            }
        })
        .unwrap();
        assert_eq!(streamed.csr(), serial.csr());
        assert!(streamed.check_invariants());
    }

    #[test]
    fn from_edge_stream_rejects_out_of_range() {
        let err = Graph::from_edge_stream(3, |sink| {
            sink(0, 1);
            sink(2, 7);
            sink(1, 2);
        })
        .unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 7, n: 3 }), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "identical sequence on both passes")]
    fn from_edge_stream_detects_divergent_replay() {
        let mut calls = 0;
        let _ = Graph::from_edge_stream(3, |sink| {
            calls += 1;
            sink(0, 1);
            if calls == 1 {
                sink(1, 2); // present in pass 1 only
            }
        });
    }

    #[test]
    fn max_degree_on_star() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(g.max_degree(), 4);
    }
}
