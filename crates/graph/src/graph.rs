//! The central [`Graph`] type: an undirected simple graph with sorted
//! adjacency lists.

use crate::{GraphError, Result};

/// Node identifier. PGB graphs have at most a few hundred thousand nodes, so
/// `u32` halves the memory footprint of adjacency storage relative to `usize`.
pub type NodeId = u32;

/// An undirected simple graph (no self-loops, no parallel edges).
///
/// Nodes are the contiguous range `0..node_count()`. Neighbour lists are kept
/// sorted, which makes [`Graph::has_edge`] a binary search and lets triangle
/// counting and set intersections run over sorted slices.
#[derive(Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    m: usize,
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], m: 0 }
    }

    /// Builds a graph from an edge iterator.
    ///
    /// Self-loops are dropped and duplicate edges collapsed, mirroring the
    /// preprocessing PGB applies to every dataset (the paper evaluates simple
    /// undirected graphs only). Returns an error if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new(n);
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                continue;
            }
            pairs.push(if u < v { (u, v) } else { (v, u) });
        }
        pairs.sort_unstable();
        pairs.dedup();
        // Two passes: size the lists exactly, then fill them.
        let mut deg = vec![0u32; n];
        for &(u, v) in &pairs {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        for (u, d) in deg.iter().enumerate() {
            g.adj[u].reserve_exact(*d as usize);
        }
        for &(u, v) in &pairs {
            g.adj[u as usize].push(v);
            g.adj[v as usize].push(u);
        }
        for list in &mut g.adj {
            list.sort_unstable();
        }
        g.m = pairs.len();
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Sorted neighbour slice of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Whether the edge `{u, v}` is present. Self-queries return `false`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Inserts the edge `{u, v}`. Returns `true` if the edge was new,
    /// `false` for self-loops and already-present edges.
    ///
    /// Insertion keeps neighbour lists sorted (an `O(deg)` shift); bulk
    /// construction should prefer [`Graph::from_edges`] or
    /// [`crate::GraphBuilder`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        let n = self.node_count();
        if u as usize >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v as usize >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Ok(false);
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => Ok(false),
            Err(pos_u) => {
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize].binary_search(&u).unwrap_err();
                self.adj[v as usize].insert(pos_v, u);
                self.m += 1;
                Ok(true)
            }
        }
    }

    /// Removes the edge `{u, v}` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || u as usize >= self.node_count() || v as usize >= self.node_count() {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(pos_u) => {
                self.adj[u as usize].remove(pos_u);
                let pos_v = self.adj[v as usize].binary_search(&u).unwrap();
                self.adj[v as usize].remove(pos_v);
                self.m -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over all edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            // Each neighbour list is sorted, so the `v > u` suffix starts at
            // the partition point; this yields every undirected edge once.
            let start = nbrs.partition_point(|&v| v <= u);
            nbrs[start..].iter().map(move |&v| (u, v))
        })
    }

    /// Collects the edges into a vector (`u < v` per pair, sorted).
    pub fn edge_vec(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.node_count() as f64
        }
    }

    /// Edge density `2m / (n (n - 1))` (0.0 for graphs with < 2 nodes).
    pub fn density(&self) -> f64 {
        let n = self.node_count() as f64;
        if n < 2.0 {
            0.0
        } else {
            2.0 * self.m as f64 / (n * (n - 1.0))
        }
    }

    /// Extracts the subgraph induced by `nodes`, relabelling them
    /// `0..nodes.len()` in the given order. Returns the subgraph and the
    /// mapping from new ids to original ids.
    ///
    /// Duplicate entries in `nodes` are ignored after the first occurrence.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_id = vec![u32::MAX; self.node_count()];
        let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for &u in nodes {
            if new_id[u as usize] == u32::MAX {
                new_id[u as usize] = order.len() as u32;
                order.push(u);
            }
        }
        let mut edges = Vec::new();
        for &u in &order {
            let nu = new_id[u as usize];
            for &v in self.neighbors(u) {
                let nv = new_id[v as usize];
                if nv != u32::MAX && nu < nv {
                    edges.push((nu, nv));
                }
            }
        }
        let sub = Graph::from_edges(order.len(), edges)
            .expect("relabelled ids are in range by construction");
        (sub, order)
    }

    /// Consistency check used by tests and `debug_assert!`s: sorted,
    /// deduplicated, symmetric adjacency with no self-loops, and `m`
    /// matching the stored lists.
    pub fn check_invariants(&self) -> bool {
        let mut half_edges = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            half_edges += nbrs.len();
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return false; // unsorted or duplicate
            }
            for &v in nbrs {
                if v as usize == u || v as usize >= self.node_count() {
                    return false;
                }
                if self.adj[v as usize].binary_search(&(u as u32)).is_err() {
                    return false; // asymmetric
                }
            }
        }
        half_edges == 2 * self.m
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn from_edges_dedups_and_drops_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 0), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.check_invariants());
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn degree_and_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn has_edge_both_orders() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn add_edge_reports_novelty() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1).unwrap());
        assert!(!g.add_edge(1, 0).unwrap());
        assert!(!g.add_edge(2, 2).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert!(g.check_invariants());
    }

    #[test]
    fn add_edge_out_of_range_errors() {
        let mut g = Graph::new(2);
        assert!(g.add_edge(0, 2).is_err());
    }

    #[test]
    fn remove_edge() {
        let mut g = triangle_plus_pendant();
        assert!(g.remove_edge(0, 2));
        assert!(!g.remove_edge(0, 2));
        assert_eq!(g.edge_count(), 3);
        assert!(g.check_invariants());
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle_plus_pendant();
        let edges = g.edge_vec();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn density_and_average_degree() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert!((g.density() - 2.0 * 2.0 / 12.0).abs() < 1e-12);
        assert_eq!(Graph::new(0).average_degree(), 0.0);
        assert_eq!(Graph::new(1).density(), 0.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle_plus_pendant();
        let (sub, order) = g.induced_subgraph(&[2, 3, 0]);
        assert_eq!(order, vec![2, 3, 0]);
        assert_eq!(sub.node_count(), 3);
        // edges {2,3} -> {0,1} and {2,0} -> {0,2}
        assert_eq!(sub.edge_vec(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = triangle_plus_pendant();
        let (sub, order) = g.induced_subgraph(&[1, 1, 2]);
        assert_eq!(order, vec![1, 2]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn empty_graph_is_consistent() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.check_invariants());
    }

    #[test]
    fn max_degree_on_star() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(g.max_degree(), 4);
    }
}
