//! Timestamped edges and per-window CSR snapshots.
//!
//! The temporal scenario axis models a longitudinal publication setting:
//! interactions arrive as `(u, v, t)` events over a shared node space, and
//! the data curator re-releases a synthetic graph once per time window. The
//! substrate for that is [`SnapshotSequence`] — the event log partitioned
//! into `W` disjoint, equal-width windows over `[t_min, t_max]`, each
//! window materialised as an ordinary immutable [`Graph`] via the streaming
//! counting-sort builder ([`GraphBuilder::build_streaming`]). Everything
//! downstream (mechanisms, the query suite, the runner) then works
//! per-snapshot with the machinery it already has for static graphs.
//!
//! Windowing semantics:
//!
//! * windows are **left-aligned and equal-width**: with span
//!   `s = t_max − t_min + 1` the width is `⌈s / W⌉`, so trailing windows
//!   may be empty but every event falls in exactly one window;
//! * an event `(u, v, t)` belongs to window `⌊(t − t_min) / width⌋`
//!   (clamped to `W − 1`, which only matters for the ceil slack);
//! * within a window the usual simple-graph semantics apply — self-loops
//!   are dropped and duplicate events collapse to one edge — while the
//!   *same* pair occurring in two windows yields an edge in both
//!   snapshots (it is a re-interaction, not a duplicate);
//! * an empty event log yields `W` empty snapshots over the full node
//!   space, so degenerate inputs flow through the pipeline unchanged.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::Result;

/// Discrete event time. Units are caller-defined (ticks, seconds, …);
/// the windowing only relies on ordering and differences.
pub type Timestamp = u64;

/// One timestamped interaction event between two nodes.
pub type TemporalEdge = (NodeId, NodeId, Timestamp);

/// An event log partitioned into per-window CSR snapshots over a shared
/// node space.
///
/// ```
/// use pgb_graph::temporal::SnapshotSequence;
///
/// // Two bursts of activity: a triangle at t∈{0,1}, a re-wiring at t=9.
/// let events = [(0, 1, 0), (1, 2, 1), (2, 0, 1), (0, 3, 9), (0, 1, 9)];
/// let seq = SnapshotSequence::build(4, &events, 2).unwrap();
/// assert_eq!(seq.window_count(), 2);
/// assert_eq!(seq.snapshot(0).edge_count(), 3); // the triangle
/// assert_eq!(seq.snapshot(1).edge_count(), 2); // (0,3) plus the repeat (0,1)
/// assert_eq!(seq.window_bounds(0), (0, 5)); // width ⌈10/2⌉ = 5, half-open
/// ```
#[derive(Clone, Debug)]
pub struct SnapshotSequence {
    t_min: Timestamp,
    width: Timestamp,
    snapshots: Vec<Graph>,
}

impl SnapshotSequence {
    /// Partitions `events` into `windows` equal-width snapshots over `n`
    /// nodes. `windows` must be ≥ 1 (a programmer error, not a data error,
    /// hence a panic); node ids out of `0..n` error like any other builder
    /// input.
    pub fn build(n: usize, events: &[TemporalEdge], windows: usize) -> Result<Self> {
        assert!(windows >= 1, "SnapshotSequence needs at least one window");
        let mut sorted: Vec<TemporalEdge> = events.to_vec();
        // Stable, so simultaneous events keep their log order (the builder
        // dedups anyway; this only matters for reproducible iteration).
        sorted.sort_by_key(|&(_, _, t)| t);

        let (t_min, t_max) = match (sorted.first(), sorted.last()) {
            (Some(&(_, _, lo)), Some(&(_, _, hi))) => (lo, hi),
            _ => (0, 0),
        };
        let span = (t_max - t_min).saturating_add(1);
        let width = span.div_ceil(windows as Timestamp).max(1);

        let mut snapshots = Vec::with_capacity(windows);
        let mut start = 0usize;
        for w in 0..windows {
            // Events are sorted by t, so each window is a contiguous slice;
            // the last window sweeps up the ceil slack.
            let end = if w + 1 == windows {
                sorted.len()
            } else {
                let fence = w as Timestamp + 1;
                sorted.partition_point(|&(_, _, t)| (t - t_min) / width < fence)
            };
            let slice = &sorted[start..end];
            // Iterating the slice is trivially replayable, which is all the
            // two-pass streaming builder asks of its emit closure.
            snapshots.push(GraphBuilder::build_streaming(n, |sink| {
                for &(u, v, _) in slice {
                    sink(u, v);
                }
            })?);
            start = end;
        }
        Ok(SnapshotSequence { t_min, width, snapshots })
    }

    /// Number of windows `W`.
    pub fn window_count(&self) -> usize {
        self.snapshots.len()
    }

    /// The shared node-space size.
    pub fn node_count(&self) -> usize {
        self.snapshots[0].node_count()
    }

    /// The snapshot of window `w`. Panics if `w ≥ window_count()`.
    pub fn snapshot(&self, w: usize) -> &Graph {
        &self.snapshots[w]
    }

    /// All snapshots, in window order.
    pub fn snapshots(&self) -> &[Graph] {
        &self.snapshots
    }

    /// The half-open timestamp range `[start, end)` of window `w`; the last
    /// window's `end` saturates instead of wrapping. Panics if out of range.
    pub fn window_bounds(&self, w: usize) -> (Timestamp, Timestamp) {
        assert!(w < self.snapshots.len(), "window {w} out of range");
        let start = self.t_min.saturating_add(self.width.saturating_mul(w as Timestamp));
        (start, start.saturating_add(self.width))
    }

    /// Total edges across all snapshots (re-interactions counted per window).
    pub fn edge_count(&self) -> usize {
        self.snapshots.iter().map(Graph::edge_count).sum()
    }

    /// Heap footprint of all snapshots, in bytes.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.snapshots.as_slice())
            + self.snapshots.iter().map(Graph::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows_of(seq: &SnapshotSequence) -> Vec<usize> {
        seq.snapshots().iter().map(Graph::edge_count).collect()
    }

    #[test]
    fn partitions_events_by_window() {
        let events = [(0, 1, 0), (1, 2, 3), (2, 3, 6), (3, 0, 9)];
        let seq = SnapshotSequence::build(4, &events, 2).unwrap();
        // span 10, width 5: t∈{0,3} left, t∈{6,9} right.
        assert_eq!(windows_of(&seq), vec![2, 2]);
        assert_eq!(seq.window_bounds(0), (0, 5));
        assert_eq!(seq.window_bounds(1), (5, 10));
        assert_eq!(seq.node_count(), 4);
        assert_eq!(seq.edge_count(), 4);
    }

    #[test]
    fn snapshot_matches_from_edges_of_window_events() {
        let events = [(0, 1, 2), (2, 3, 2), (1, 2, 7), (0, 1, 8), (1, 0, 8)];
        let seq = SnapshotSequence::build(4, &events, 2).unwrap();
        let left = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let right = Graph::from_edges(4, [(1, 2), (0, 1)]).unwrap();
        assert_eq!(seq.snapshot(0).csr(), left.csr());
        assert_eq!(seq.snapshot(1).csr(), right.csr());
    }

    #[test]
    fn unsorted_input_is_sorted_first() {
        let shuffled = [(3, 0, 9), (0, 1, 0), (2, 3, 6), (1, 2, 3)];
        let ordered = [(0, 1, 0), (1, 2, 3), (2, 3, 6), (3, 0, 9)];
        let a = SnapshotSequence::build(4, &shuffled, 3).unwrap();
        let b = SnapshotSequence::build(4, &ordered, 3).unwrap();
        for w in 0..3 {
            assert_eq!(a.snapshot(w).csr(), b.snapshot(w).csr());
        }
    }

    #[test]
    fn burst_leaves_trailing_windows_empty() {
        // All activity in one instant: window 0 gets everything, the ceil
        // slack leaves the rest empty but present.
        let events = [(0, 1, 5), (1, 2, 5), (2, 0, 5)];
        let seq = SnapshotSequence::build(3, &events, 4).unwrap();
        assert_eq!(windows_of(&seq), vec![3, 0, 0, 0]);
        for w in 0..4 {
            assert_eq!(seq.snapshot(w).node_count(), 3);
        }
    }

    #[test]
    fn empty_log_yields_empty_snapshots() {
        let seq = SnapshotSequence::build(5, &[], 3).unwrap();
        assert_eq!(seq.window_count(), 3);
        assert_eq!(windows_of(&seq), vec![0, 0, 0]);
        assert_eq!(seq.node_count(), 5);
    }

    #[test]
    fn self_loops_and_duplicates_collapse_per_window() {
        let events = [(0, 0, 1), (0, 1, 1), (1, 0, 1), (0, 1, 9)];
        let seq = SnapshotSequence::build(2, &events, 2).unwrap();
        // Window 0: the self-loop drops and (0,1)/(1,0) collapse; window 1
        // re-publishes the pair as its own edge.
        assert_eq!(windows_of(&seq), vec![1, 1]);
    }

    #[test]
    fn single_window_is_the_whole_log() {
        let events = [(0, 1, 0), (1, 2, 100), (2, 0, 7)];
        let seq = SnapshotSequence::build(3, &events, 1).unwrap();
        let all = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(seq.snapshot(0).csr(), all.csr());
        assert_eq!(seq.window_bounds(0), (0, 101));
    }

    #[test]
    fn node_range_errors_propagate() {
        assert!(SnapshotSequence::build(2, &[(0, 5, 0)], 1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        let _ = SnapshotSequence::build(2, &[(0, 1, 0)], 0);
    }

    #[test]
    fn extreme_timestamps_do_not_overflow() {
        let events = [(0, 1, 0), (1, 2, u64::MAX)];
        let seq = SnapshotSequence::build(3, &events, 2).unwrap();
        assert_eq!(windows_of(&seq), vec![1, 1]);
        let (_, end) = seq.window_bounds(1);
        assert_eq!(end, u64::MAX); // saturated, not wrapped
    }
}
