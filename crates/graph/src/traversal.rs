//! Breadth-first traversal and connected components.
//!
//! These routines back every path-condition query in the benchmark
//! (diameter, average shortest path, distance distribution) and the
//! largest-component extraction used by eigenvector centrality.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance value for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances; unreachable nodes get [`UNREACHABLE`].
///
/// `dist` is a caller-owned scratch buffer so repeated calls (all-pairs
/// sweeps) do not reallocate; it is resized and reset internally.
pub fn bfs_distances_into(g: &Graph, src: NodeId, dist: &mut Vec<u32>) {
    dist.clear();
    dist.resize(g.node_count(), UNREACHABLE);
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
}

/// Convenience wrapper around [`bfs_distances_into`] that allocates the
/// output buffer.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = Vec::new();
    bfs_distances_into(g, src, &mut dist);
    dist
}

/// The eccentricity (maximum finite BFS distance) of `src`, ignoring
/// unreachable nodes. Returns 0 for isolated nodes.
pub fn eccentricity(g: &Graph, src: NodeId) -> u32 {
    bfs_distances(g, src).into_iter().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
}

/// Connected-component labelling.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[u]` is the component index of node `u` (0-based, in order of
    /// discovery by increasing node id).
    pub label: Vec<u32>,
    /// Number of nodes per component, indexed by label.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Label of the largest component (ties broken by lowest label).
    pub fn largest(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// The node ids belonging to component `label`, in increasing order.
    pub fn members(&self, label: u32) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == label)
            .map(|(u, _)| u as NodeId)
            .collect()
    }
}

/// Computes connected components with iterative BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        let comp = sizes.len() as u32;
        let mut size = 0usize;
        label[start] = comp;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = comp;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() == 0 || connected_components(g).count() == 1
}

/// Extracts the largest connected component as a relabelled subgraph,
/// returning it together with the new-id → original-id mapping.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    if g.node_count() == 0 {
        return (Graph::new(0), Vec::new());
    }
    let comps = connected_components(g);
    let members = comps.members(comps.largest());
    g.induced_subgraph(&members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn two_components() -> Graph {
        // path 0-1-2 and edge 3-4, node 5 isolated
        Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn bfs_path_distances() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = two_components();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], UNREACHABLE);
        assert_eq!(d[5], UNREACHABLE);
        assert_eq!(d[2], 2);
    }

    #[test]
    fn bfs_into_reuses_buffer() {
        let g = two_components();
        let mut buf = vec![9; 1];
        bfs_distances_into(&g, 3, &mut buf);
        assert_eq!(buf.len(), 6);
        assert_eq!(buf[4], 1);
    }

    #[test]
    fn eccentricity_ignores_other_components() {
        let g = two_components();
        assert_eq!(eccentricity(&g, 0), 2);
        assert_eq!(eccentricity(&g, 3), 1);
        assert_eq!(eccentricity(&g, 5), 0);
    }

    #[test]
    fn components_counts_and_sizes() {
        let c = connected_components(&two_components());
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes, vec![3, 2, 1]);
        assert_eq!(c.largest(), 0);
        assert_eq!(c.members(1), vec![3, 4]);
    }

    #[test]
    fn is_connected_cases() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::from_edges(2, [(0, 1)]).unwrap()));
        assert!(!is_connected(&two_components()));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn largest_component_extraction() {
        let (sub, order) = largest_component(&two_components());
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let (sub, order) = largest_component(&Graph::new(0));
        assert_eq!(sub.node_count(), 0);
        assert!(order.is_empty());
    }
}
