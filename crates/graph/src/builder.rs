//! Incremental edge accumulation with a single sort/dedup pass at build time.

use crate::{Graph, NodeId, Result};

/// Accumulates edges cheaply (no per-insertion ordering work) and produces a
/// [`Graph`] with one sort/dedup pass.
///
/// This is the *only* incremental-construction path: [`Graph`] itself is an
/// immutable CSR structure, so every constructor that discovers edges one at
/// a time (all the synthetic-graph models, the DP mechanisms' construction
/// phases) pushes them here and finalises once — `O(E log E)` total, ending
/// in the two flat CSR allocations.
///
/// ```
/// use pgb_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.push(0, 1);
/// b.push(1, 0); // duplicate, collapsed at build
/// b.push(2, 2); // self-loop, dropped at build
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// A builder with pre-reserved capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { n, edges: Vec::with_capacity(m) }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of pushed (not yet deduplicated) edges.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Records the edge `{u, v}`. Range checking is deferred to
    /// [`GraphBuilder::build`]; self-loops and duplicates are dropped there.
    #[inline]
    pub fn push(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v));
    }

    /// Extends from an edge iterator.
    pub fn extend<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }

    /// Finalises the accumulated edges into a [`Graph`].
    pub fn build(self) -> Result<Graph> {
        Graph::from_edges(self.n, self.edges)
    }

    /// Finalises with the sort/dedup pass spread over up to `threads`
    /// workers (0 ⇒ available parallelism) — see [`Graph::from_edge_vec`].
    /// Produces exactly the same graph as [`GraphBuilder::build`]; the
    /// generators' parallel construction phases use this so the final
    /// builder pass is not the one serial stage left on a big edge list.
    pub fn build_parallel(self, threads: usize) -> Result<Graph> {
        Graph::from_edge_vec(self.n, self.edges, threads)
    }

    /// Streaming construction: counting-sorts an edge stream directly into
    /// the CSR arrays without ever materialising the unsorted edge list.
    ///
    /// `emit` is invoked exactly twice and must produce the *identical*
    /// edge sequence on both calls (the first pass counts endpoint
    /// occurrences, the second fills the neighbour segments); generators
    /// replay by cloning their RNG before the first pass. A divergent
    /// second pass panics. Self-loops and duplicate edges are dropped, as
    /// in [`GraphBuilder::build`], and the final graph is byte-identical to
    /// the one `build` would produce from the same stream.
    ///
    /// Peak heap is one `2m`-entry neighbour array plus an `n`-entry count
    /// array — roughly half of the accumulate-then-sort path, which holds
    /// the pushed edge list and the CSR arrays simultaneously. Edge counts
    /// that would overflow the `u32` offset array are reported as
    /// [`crate::GraphError::TooManyEdges`] before the big allocation, so
    /// generators that know their edge count can probe cheaply.
    pub fn build_streaming<F>(n: usize, emit: F) -> Result<Graph>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        Graph::from_edge_stream(n, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_collapses_duplicates() {
        let mut b = GraphBuilder::with_capacity(4, 6);
        b.extend([(0, 1), (1, 0), (1, 2), (2, 3), (2, 3), (3, 3)]);
        assert_eq!(b.pending_edges(), 6);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.check_invariants());
    }

    #[test]
    fn build_propagates_range_errors() {
        let mut b = GraphBuilder::new(2);
        b.push(0, 9);
        assert!(b.build().is_err());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(5).build().unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn build_streaming_matches_build() {
        let edges = [(0u32, 1u32), (1, 0), (1, 2), (2, 3), (2, 3), (3, 3), (0, 3)];
        let mut b = GraphBuilder::new(4);
        b.extend(edges);
        let built = b.build().unwrap();
        let streamed = GraphBuilder::build_streaming(4, |sink| {
            for &(u, v) in &edges {
                sink(u, v);
            }
        })
        .unwrap();
        assert_eq!(streamed.csr(), built.csr());
        assert_eq!(streamed.edge_count(), 4);
        assert!(streamed.check_invariants());
    }

    #[test]
    fn build_streaming_empty_stream() {
        let g = GraphBuilder::build_streaming(3, |_sink| {}).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.check_invariants());
    }
}
