//! Minimal argument parsing shared by the harness binaries.

use pgb_core::benchmark::{MeasureReuse, Scheduler};
use pgb_queries::EvalMode;

/// Experiment scale presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Full grid, 2 repetitions, sampled path queries — minutes on a
    /// laptop. The default.
    Small,
    /// Full grid, 5 repetitions.
    Medium,
    /// The paper's protocol: 10 repetitions (§V-D). Hours.
    Paper,
}

impl Scale {
    /// Repetitions per benchmark cell.
    pub fn repetitions(&self) -> usize {
        match self {
            Scale::Small => 2,
            Scale::Medium => 5,
            Scale::Paper => 10,
        }
    }
}

/// Parsed harness arguments.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Scale preset.
    pub scale: Scale,
    /// Repetition override (None ⇒ scale default).
    pub reps: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 ⇒ available parallelism).
    pub threads: usize,
    /// Thread scheduler (`--sched static|elastic`; elastic default). The
    /// static split is an escape hatch / baseline — output is
    /// byte-identical either way, only wall-clock differs.
    pub sched: Scheduler,
    /// Measurement amortisation (`--reuse rep|cell`; rep default). Per-rep
    /// is the paper-faithful pipeline; per-cell runs the ε-consuming
    /// `measure` phase once per (dataset, algorithm, ε) cell and
    /// re-samples it each repetition — the numbers change by design, but
    /// stay deterministic in threads and scheduler.
    pub reuse: MeasureReuse,
    /// Suite evaluation mode (`--eval exact|approx`; exact default).
    /// Approx replaces the BFS sweep, the triangle pass, and the degree
    /// histogram with the sketches in `pgb_queries::approx` — the numbers
    /// change by design (each estimate carries a stated error bound), but
    /// stay deterministic in threads and scheduler.
    pub eval: EvalMode,
    /// Number of snapshot windows for the temporal harness
    /// (`--windows N`, N ≥ 1; only the temporal binaries read it).
    pub windows: usize,
    /// Per-window ε weights (`--window-eps w1,w2,…`). Empty ⇒ even split.
    /// When given, the length must equal `windows`.
    pub window_eps: Vec<f64>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: Scale::Small,
            reps: None,
            seed: 0,
            threads: 0,
            sched: Scheduler::default(),
            reuse: MeasureReuse::default(),
            eval: EvalMode::default(),
            windows: 4,
            window_eps: Vec::new(),
        }
    }
}

impl HarnessArgs {
    /// Parses `--scale`, `--reps`, `--seed`, `--threads`, `--sched`,
    /// `--reuse`, `--eval`, `--windows`, `--window-eps` from an iterator
    /// of arguments (unknown arguments error).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_of =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match arg.as_str() {
                "--scale" => {
                    out.scale = match value_of("--scale")?.as_str() {
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "paper" => Scale::Paper,
                        other => return Err(format!("unknown scale {other:?}")),
                    };
                }
                "--reps" => {
                    out.reps = Some(
                        value_of("--reps")?.parse().map_err(|e| format!("invalid --reps: {e}"))?,
                    );
                }
                "--seed" => {
                    out.seed =
                        value_of("--seed")?.parse().map_err(|e| format!("invalid --seed: {e}"))?;
                }
                "--threads" => {
                    out.threads = value_of("--threads")?
                        .parse()
                        .map_err(|e| format!("invalid --threads: {e}"))?;
                }
                "--sched" => {
                    out.sched = value_of("--sched")?
                        .parse()
                        .map_err(|e| format!("invalid --sched: {e}"))?;
                }
                "--reuse" => {
                    out.reuse = value_of("--reuse")?
                        .parse()
                        .map_err(|e| format!("invalid --reuse: {e}"))?;
                }
                "--eval" => {
                    out.eval =
                        value_of("--eval")?.parse().map_err(|e| format!("invalid --eval: {e}"))?;
                }
                "--windows" => {
                    out.windows = value_of("--windows")?
                        .parse()
                        .map_err(|e| format!("invalid --windows: {e}"))?;
                    if out.windows == 0 {
                        return Err("--windows must be at least 1".to_string());
                    }
                }
                "--window-eps" => {
                    out.window_eps = value_of("--window-eps")?
                        .split(',')
                        .map(|w| {
                            w.trim()
                                .parse::<f64>()
                                .map_err(|e| format!("invalid --window-eps: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if !out.window_eps.is_empty() && out.window_eps.len() != out.windows {
            return Err(format!(
                "--window-eps has {} weights but --windows is {}",
                out.window_eps.len(),
                out.windows
            ));
        }
        Ok(out)
    }

    /// Parses from the process arguments, exiting with usage on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--scale small|medium|paper] [--reps N] [--seed N] [--threads N] \
                     [--sched static|elastic] [--reuse rep|cell] [--eval exact|approx] \
                     [--windows N] [--window-eps w1,w2,...]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Effective repetition count.
    pub fn repetitions(&self) -> usize {
        self.reps.unwrap_or_else(|| self.scale.repetitions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.repetitions(), 2);
        assert_eq!(a.seed, 0);
        assert_eq!(a.sched, Scheduler::Elastic);
        assert_eq!(a.reuse, MeasureReuse::PerRep);
    }

    #[test]
    fn full_parse() {
        let a = parse(&[
            "--scale",
            "paper",
            "--reps",
            "3",
            "--seed",
            "9",
            "--threads",
            "4",
            "--sched",
            "static",
            "--reuse",
            "cell",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.repetitions(), 3); // override wins
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 4);
        assert_eq!(a.sched, Scheduler::Static);
        assert_eq!(a.reuse, MeasureReuse::PerCell);
    }

    #[test]
    fn reuse_parses_both_modes() {
        assert_eq!(parse(&["--reuse", "rep"]).unwrap().reuse, MeasureReuse::PerRep);
        assert_eq!(parse(&["--reuse", "cell"]).unwrap().reuse, MeasureReuse::PerCell);
        assert!(parse(&["--reuse", "always"]).is_err());
        assert!(parse(&["--reuse"]).is_err());
    }

    #[test]
    fn eval_parses_both_modes() {
        assert_eq!(parse(&[]).unwrap().eval, EvalMode::Exact);
        assert_eq!(parse(&["--eval", "exact"]).unwrap().eval, EvalMode::Exact);
        assert_eq!(
            parse(&["--eval", "approx"]).unwrap().eval,
            EvalMode::Approx(pgb_queries::ApproxConfig::default())
        );
        assert!(parse(&["--eval", "sketchy"]).is_err());
        assert!(parse(&["--eval"]).is_err());
    }

    #[test]
    fn sched_parses_both_modes() {
        assert_eq!(parse(&["--sched", "elastic"]).unwrap().sched, Scheduler::Elastic);
        assert_eq!(parse(&["--sched", "static"]).unwrap().sched, Scheduler::Static);
        assert!(parse(&["--sched", "greedy"]).is_err());
        assert!(parse(&["--sched"]).is_err());
    }

    #[test]
    fn scale_defaults() {
        assert_eq!(Scale::Small.repetitions(), 2);
        assert_eq!(Scale::Medium.repetitions(), 5);
        assert_eq!(Scale::Paper.repetitions(), 10);
    }

    #[test]
    fn windows_parse_and_validate() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.windows, 4);
        assert!(a.window_eps.is_empty());
        let a = parse(&["--windows", "6"]).unwrap();
        assert_eq!(a.windows, 6);
        let a = parse(&["--windows", "3", "--window-eps", "1,2, 3"]).unwrap();
        assert_eq!(a.window_eps, vec![1.0, 2.0, 3.0]);
        // Weight count must match the window count (order-independent).
        assert!(parse(&["--windows", "3", "--window-eps", "1,2"]).is_err());
        assert!(parse(&["--window-eps", "1,2", "--windows", "3"]).is_err());
        assert!(parse(&["--windows", "0"]).is_err());
        assert!(parse(&["--window-eps", "1,oops"]).is_err());
        assert!(parse(&["--windows"]).is_err());
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
        assert!(parse(&["--reps"]).is_err());
    }
}
