//! Wall-clock measurement for the Table IX experiment.

use pgb_core::GraphGenerator;
use pgb_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs one generation and returns `(synthetic_graph, seconds)`.
pub fn time_once(
    algorithm: &dyn GraphGenerator,
    graph: &Graph,
    epsilon: f64,
    seed: u64,
) -> (Graph, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let out = algorithm.generate(graph, epsilon, &mut rng).expect("benchmark inputs are valid");
    (out, start.elapsed().as_secs_f64())
}

/// Formats seconds in the paper's Table IX style.
pub fn format_seconds(s: f64) -> String {
    if s < 10.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgb_core::TmF;

    #[test]
    fn timing_returns_graph_and_positive_duration() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = pgb_models::erdos_renyi_gnp(200, 0.05, &mut rng);
        let (out, secs) = time_once(&TmF::default(), &g, 1.0, 1);
        assert_eq!(out.node_count(), 200);
        assert!(secs >= 0.0);
    }

    #[test]
    fn formats() {
        assert_eq!(format_seconds(0.123), "0.12");
        assert_eq!(format_seconds(123.456), "123.5");
    }
}
