//! A counting global allocator for the Table X memory measurements.
//!
//! The paper reports per-algorithm memory consumption from the OS; offline
//! and cross-platform, the equivalent deterministic quantity is the peak
//! live heap during a generation, which this allocator tracks with two
//! atomics. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pgb_bench::CountingAllocator = pgb_bench::CountingAllocator;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks live and peak bytes.
pub struct CountingAllocator;

impl CountingAllocator {
    /// Currently live heap bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak live bytes since the last [`CountingAllocator::reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size and returns the old peak.
    pub fn reset_peak() -> usize {
        PEAK.swap(LIVE.load(Ordering::Relaxed), Ordering::Relaxed)
    }

    /// Runs `f` and returns `(result, peak_bytes_during_f)` where the peak
    /// is measured relative to the live size at entry.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, usize) {
        let base = Self::live();
        Self::reset_peak();
        let out = f();
        let peak = Self::peak();
        (out, peak.saturating_sub(base))
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Formats a byte count as a human-readable megabyte string (Table X's
/// unit).
pub fn format_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the test binary does not install the allocator globally, so
    // these tests only exercise the bookkeeping helpers' arithmetic.

    #[test]
    fn format_mb_values() {
        assert_eq!(format_mb(0), "0.00");
        assert_eq!(format_mb(1024 * 1024), "1.00");
        assert_eq!(format_mb(1536 * 1024), "1.50");
    }

    #[test]
    fn measure_returns_closure_result() {
        let (v, peak) = CountingAllocator::measure(|| 41 + 1);
        assert_eq!(v, 42);
        // Peak is non-negative by construction; without the global hook it
        // simply reads 0.
        let _ = peak;
    }
}
