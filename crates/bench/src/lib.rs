//! # pgb-bench
//!
//! The PGB experiment harness: one binary per table / figure of the paper
//! (see `src/bin/`), shared measurement utilities, and the Criterion
//! micro-benchmarks (see `benches/`).
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table6` | Table VI — dataset statistics |
//! | `table7` | Table VII — Definition 5 best-performance counts |
//! | `table8` | Table VIII — complexity summary |
//! | `table9_time` | Table IX — wall-clock generation time |
//! | `table10_memory` | Table X — peak heap per generation |
//! | `table11_dpdk_verify` | Table XI — DP-dK verification on CA-GrQc |
//! | `table12` | Table XII — Definition 6 per-query best counts |
//! | `fig2` | Fig. 2 — five error curves on four datasets |
//! | `fig3_fig4_tmf_verify` | Figs. 3/4 — TmF verification on Facebook |
//! | `fig5_fig6_privskg_verify` | Figs. 5/6 — PrivSKG verification on CA-GrQc |
//! | `fig7_der` | Fig. 7 — DER vs TmF vs PrivGraph |
//! | `temporal_grid` | temporal scenario axis — per-window errors + drift |
//! | `run_all` | everything above (except `temporal_grid`), in sequence |
//!
//! Every binary accepts `--scale small|medium|paper` (default `small`),
//! `--reps N`, `--seed N`, `--threads N`, and `--sched static|elastic`
//! (default `elastic`; scheduling only — the emitted numbers are
//! byte-identical between the modes). `small` runs the full
//! experiment *grid* at reduced repetitions and with sampled path queries
//! so the whole suite finishes in minutes on a laptop; `paper` matches the
//! paper's protocol (10 repetitions, all datasets).

pub mod alloc_counter;
pub mod cli;
pub mod setup;
pub mod timing;

pub use alloc_counter::CountingAllocator;
pub use cli::{HarnessArgs, Scale};
pub use setup::{
    benchmark_config, load_datasets, load_temporal_datasets, suite, temporal_suite_for,
};
pub use timing::time_once;
