//! Regenerates **Table XI** (verification appendix): DP-dK on CA-GrQc at
//! ε ∈ {20, 2, 0.2}, reporting the nine statistics of the original
//! DP-dK paper against the ground truth.

use pgb_bench::HarnessArgs;
use pgb_core::benchmark::TextTable;
use pgb_core::{DpDk, GraphGenerator};
use pgb_datasets::Dataset;
use pgb_graph::degree::assortativity;
use pgb_queries::clustering::{average_clustering, global_clustering};
use pgb_queries::counting::triangle_count;
use pgb_queries::path::path_stats;
use pgb_queries::{topology, PathMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The nine Table XI statistics of one graph.
fn stats(g: &pgb_graph::Graph, rng: &mut StdRng) -> Vec<f64> {
    let paths = path_stats(g, PathMode::Sampled { sources: 128 }, rng);
    vec![
        g.node_count() as f64,
        g.edge_count() as f64,
        g.average_degree(),
        assortativity(g).unwrap_or(0.0),
        average_clustering(g),
        paths.diameter as f64,
        triangle_count(g) as f64,
        global_clustering(g),
        topology::detected_modularity(g, rng),
    ]
}

const NAMES: [&str; 9] = ["|V|", "|E|", "d_avg", "Ass", "ACC", "l_max", "tri", "GCC", "Mod"];

fn main() {
    let args = HarnessArgs::from_env();
    let truth = Dataset::CaGrQc.generate(args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let true_stats = stats(&truth, &mut rng);

    println!("Table XI — DP-dK verification on CA-GrQc\n");
    let mut table = TextTable::new(["Query", "Ground Truth", "ε=20", "ε=2", "ε=0.2"]);
    let gen = DpDk::default();
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for eps in [20.0f64, 2.0, 0.2] {
        eprintln!("generating at ε = {eps} ...");
        // Average over the scale's repetitions, as the paper does.
        let reps = args.repetitions().max(1);
        let mut acc = vec![0.0f64; NAMES.len()];
        for rep in 0..reps {
            let mut gen_rng = StdRng::seed_from_u64(args.seed ^ (rep as u64) << 8 ^ eps.to_bits());
            let synthetic = gen.generate(&truth, eps, &mut gen_rng).expect("valid inputs");
            for (slot, v) in acc.iter_mut().zip(stats(&synthetic, &mut gen_rng)) {
                *slot += v;
            }
        }
        columns.push(acc.into_iter().map(|v| v / reps as f64).collect());
    }
    for (i, name) in NAMES.iter().enumerate() {
        table.add_row([
            name.to_string(),
            format!("{:.3}", true_stats[i]),
            format!("{:.3}", columns[0][i]),
            format!("{:.3}", columns[1][i]),
            format!("{:.3}", columns[2][i]),
        ]);
    }
    println!("{}", table.render());
    println!("(dK-2 variant with smooth sensitivity, δ = 0.01; {} reps)", args.repetitions());
}
