//! Regenerates **Table X**: peak heap consumption (megabytes) of one
//! generation per algorithm × dataset at ε = 1, measured with the
//! counting global allocator (the offline equivalent of the paper's OS
//! memory readings — see DESIGN.md's substitution table).

use pgb_bench::{load_datasets, suite, CountingAllocator, HarnessArgs};
use pgb_core::benchmark::TextTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let args = HarnessArgs::from_env();
    let datasets = load_datasets(args.seed);
    let algorithms = suite();
    println!("Table X — peak heap per generation (MB), ε = 1\n");
    let mut headers = vec!["Graph".to_string(), "CSR".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name().to_string()));
    let mut table = TextTable::new(headers);
    for (name, graph) in &datasets {
        eprintln!("measuring on {name} ({} nodes)...", graph.node_count());
        // Resident footprint of the dataset's CSR arrays themselves — the
        // floor any generation's peak sits on top of.
        let mut row = vec![name.clone(), pgb_bench::alloc_counter::format_mb(graph.heap_bytes())];
        for algo in &algorithms {
            let (_, peak) = CountingAllocator::measure(|| {
                let mut rng = StdRng::seed_from_u64(args.seed);
                algo.generate(graph, 1.0, &mut rng).expect("valid inputs")
            });
            row.push(pgb_bench::alloc_counter::format_mb(peak));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
}
