//! Regenerates **Figs. 5 and 6** (verification appendix): PrivSKG on
//! CA-GrQc at ε = 0.2 (the original paper's setting) — the degree
//! distribution of original vs generated graphs on a log-binned scale
//! (Fig. 5) and the degree-vs-average-local-clustering curve (Fig. 6).

use pgb_bench::HarnessArgs;
use pgb_core::benchmark::TextTable;
use pgb_core::{GraphGenerator, PrivSkg};
use pgb_datasets::Dataset;
use pgb_queries::clustering::clustering_by_degree;
use pgb_queries::degree::log_binned_degree_histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let truth = Dataset::CaGrQc.generate(args.seed);
    let eps = 0.2;
    let reps = args.repetitions().max(1);
    eprintln!("generating {reps} PrivSKG graphs at ε = {eps} ...");
    let mut synths = Vec::new();
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(args.seed ^ ((rep as u64) << 24));
        synths.push(PrivSkg::default().generate(&truth, eps, &mut rng).expect("valid inputs"));
    }

    // ---- Fig. 5: log-binned degree histograms ----
    println!("Fig. 5 — degree distribution (log₂-binned node counts)\n");
    let true_hist = log_binned_degree_histogram(&truth);
    let synth_hists: Vec<Vec<u64>> = synths.iter().map(log_binned_degree_histogram).collect();
    let bins = true_hist.len().max(synth_hists.iter().map(Vec::len).max().unwrap_or(0));
    let mut table = TextTable::new(["degree bin", "original", "generated (avg)"]);
    for b in 0..bins {
        let label =
            if b == 0 { "0".to_string() } else { format!("[{}, {})", 1u64 << (b - 1), 1u64 << b) };
        let orig = true_hist.get(b).copied().unwrap_or(0);
        let avg: f64 =
            synth_hists.iter().map(|h| h.get(b).copied().unwrap_or(0) as f64).sum::<f64>()
                / reps as f64;
        table.add_row([label, orig.to_string(), format!("{avg:.1}")]);
    }
    println!("{}", table.render());

    // ---- Fig. 6: degree vs average local clustering ----
    println!("Fig. 6 — degree vs average local clustering coefficient\n");
    let true_curve = clustering_by_degree(&truth);
    let synth_curves: Vec<Vec<f64>> = synths.iter().map(clustering_by_degree).collect();
    let mut table = TextTable::new(["degree", "original ACC", "generated ACC (avg)"]);
    // Sample the curve at powers of two, as the log-log plot does.
    let mut d = 1usize;
    let max_d = true_curve.len().max(synth_curves.iter().map(Vec::len).max().unwrap_or(0));
    while d < max_d {
        let orig = true_curve.get(d).copied().unwrap_or(0.0);
        let avg: f64 = synth_curves.iter().map(|c| c.get(d).copied().unwrap_or(0.0)).sum::<f64>()
            / reps as f64;
        table.add_row([d.to_string(), format!("{orig:.4}"), format!("{avg:.4}")]);
        d *= 2;
    }
    println!("{}", table.render());
    println!("Expected shape (appendix A): both distributions peak at the same");
    println!("order of magnitude and decay power-law-like; the SKG model smooths");
    println!("the clustering curve relative to the clique-heavy original.");
}
