//! Runs every table / figure binary's experiment in sequence by invoking
//! the sibling binaries (so each gets its own process, which matters for
//! the Table X allocator measurement).

use std::process::{Command, ExitCode};

const BINS: [&str; 10] = [
    "table6",
    "table8",
    "table9_time",
    "table10_memory",
    "table11_dpdk_verify",
    "fig3_fig4_tmf_verify",
    "fig5_fig6_privskg_verify",
    "fig7_der",
    "fig2",
    "table7",
];

fn run() -> Result<ExitCode, String> {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().map_err(|e| format!("locating current exe: {e}"))?;
    let dir = me.parent().ok_or("current exe has no parent directory")?;
    for bin in BINS {
        println!("\n============================================================");
        println!("== {bin}");
        println!("============================================================\n");
        let status = Command::new(dir.join(bin))
            .args(&forwarded)
            .status()
            .map_err(|e| format!("launching {bin}: {e}"))?;
        if !status.success() {
            return Err(format!("{bin} failed with {status}"));
        }
    }
    // Table XII reuses the Table VII grid; run it last so a user watching
    // the output sees the headline tables at the end.
    println!("\n============================================================");
    println!("== table12");
    println!("============================================================\n");
    let status = Command::new(dir.join("table12"))
        .args(&forwarded)
        .status()
        .map_err(|e| format!("launching table12: {e}"))?;
    Ok(ExitCode::from(status.code().unwrap_or(1).clamp(0, 255) as u8))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("run_all: {e}");
            ExitCode::FAILURE
        }
    }
}
