//! Runs every table / figure binary's experiment in sequence by invoking
//! the sibling binaries (so each gets its own process, which matters for
//! the Table X allocator measurement).

use std::process::Command;

const BINS: [&str; 10] = [
    "table6",
    "table8",
    "table9_time",
    "table10_memory",
    "table11_dpdk_verify",
    "fig3_fig4_tmf_verify",
    "fig5_fig6_privskg_verify",
    "fig7_der",
    "fig2",
    "table7",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    for bin in BINS {
        println!("\n============================================================");
        println!("== {bin}");
        println!("============================================================\n");
        let status = Command::new(dir.join(bin))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
    // Table XII reuses the Table VII grid; run it last so a user watching
    // the output sees the headline tables at the end.
    println!("\n============================================================");
    println!("== table12");
    println!("============================================================\n");
    let status = Command::new(dir.join("table12"))
        .args(&forwarded)
        .status()
        .expect("failed to launch table12");
    std::process::exit(status.code().unwrap_or(1));
}
