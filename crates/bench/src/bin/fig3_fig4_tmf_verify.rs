//! Regenerates **Figs. 3 and 4** (verification appendix): TmF on the
//! Facebook dataset — degree-distribution KL divergence (Fig. 3) and
//! community-detection NMI (Fig. 4) across the six privacy budgets.
//!
//! The appendix validates the re-implementation by comparing curve shape
//! (range and trend) against the PrivGraph paper's TmF curves; this
//! binary prints both the KL series and the NMI series.

use pgb_bench::{setup, HarnessArgs};
use pgb_core::benchmark::TextTable;
use pgb_core::{GraphGenerator, TmF};
use pgb_datasets::Dataset;
use pgb_metrics::{kl_divergence, normalized_mutual_information};
use pgb_queries::topology::detect_communities;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::from_env();
    let graph = Dataset::Facebook.generate(args.seed);
    let _ = setup::query_params_for(graph.node_count());
    let mut rng = StdRng::seed_from_u64(args.seed);
    let true_dd = pgb_graph::degree::degree_distribution(&graph);
    let true_cd = detect_communities(&graph, &mut rng);

    println!("Figs. 3/4 — TmF verification on Facebook ({} reps)\n", args.repetitions());
    let mut table = TextTable::new(["ε", "degree-dist KL (Fig. 3)", "CD NMI (Fig. 4)"]);
    for eps in [0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let reps = args.repetitions().max(1);
        let (mut kl_sum, mut nmi_sum) = (0.0, 0.0);
        for rep in 0..reps {
            let mut r = StdRng::seed_from_u64(args.seed ^ ((rep as u64) << 16) ^ eps.to_bits());
            let synthetic = TmF::default().generate(&graph, eps, &mut r).expect("valid inputs");
            kl_sum += kl_divergence(&true_dd, &pgb_graph::degree::degree_distribution(&synthetic));
            let labels = detect_communities(&synthetic, &mut r);
            // Align lengths (TmF keeps the node set, but stay defensive).
            let n = true_cd.len().min(labels.len());
            nmi_sum += normalized_mutual_information(&true_cd[..n], &labels[..n]);
        }
        table.add_row([
            format!("{eps}"),
            format!("{:.4}", kl_sum / reps as f64),
            format!("{:.4}", nmi_sum / reps as f64),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (appendix A): KL in the ~10..15 range at small ε,");
    println!("declining as ε grows; NMI low at small ε and improving with ε.");
}
