//! Regenerates **Table VIII**: the theoretical time / space complexity of
//! each algorithm. These are analytical results; the table below states
//! the complexity of *this repository's* implementations, which improve on
//! the paper's adjacency-matrix re-implementations where the original
//! algorithms allow it (the paper's Remark 5 notes its Python versions are
//! O(n²) across the board because it materialises adjacency matrices —
//! TmF's own paper is explicit about the linear-cost variant we implement).

use pgb_core::benchmark::TextTable;

fn main() {
    println!("Table VIII — time and space complexity\n");
    let mut table = TextTable::new([
        "Algorithm",
        "Time (paper)",
        "Space (paper)",
        "Time (ours)",
        "Space (ours)",
    ]);
    for row in [
        ["DP-dK", "O(n^2)", "O(n^2)", "O(m log n)", "O(n + m)"],
        ["TmF", "O(n^2)", "O(n^2)", "O(m + m~)", "O(n + m)"],
        ["PrivSKG", "O(n^2 m)", "O(n^2)", "O(G^3 + m)", "O(n + m)"],
        ["PrivHRG", "O(n^2 log n)", "O(m + n)", "O(S log n + m)", "O(n + m)"],
        ["PrivGraph", "O(n^2)", "O(m + n)", "O((n/t)^2 + m)", "O(n + m)"],
        ["DGG", "O(n^2)", "O(n^2)", "O(n log n + m)", "O(n + m)"],
    ] {
        table.add_row(row);
    }
    println!("{}", table.render());
    println!("n: nodes  m: edges  m~: noisy edge count  S: MCMC steps");
    println!("G: moment-fit grid resolution  t: PrivGraph super-node size");
}
