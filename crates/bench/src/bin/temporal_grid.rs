//! Runs the **temporal scenario axis**: the windowed benchmark grid —
//! temporal mechanisms × BA-growth event logs × ε — reporting one error
//! row per (window, query) plus a drift row per query (how well the
//! synthetic sequence tracks the true sequence's window-to-window
//! change).
//!
//! `--windows N` picks the snapshot count (default 4), `--window-eps
//! w1,…,wN` skews the per-window budget split away from even. Output is
//! byte-identical across `--threads` and `--sched` settings; the raw CSV
//! lands in `target/temporal_grid_raw.csv`.

use pgb_bench::{benchmark_config, load_temporal_datasets, temporal_suite_for, HarnessArgs};
use pgb_core::benchmark::run_temporal_benchmark;
use pgb_datasets::temporal::TemporalDataset;
use pgb_queries::temporal::inter_event_time_histogram;

fn main() {
    let args = HarnessArgs::from_env();
    let datasets = load_temporal_datasets(args.seed, args.windows);
    let algorithms = temporal_suite_for(&args);
    let max_nodes = datasets.iter().map(|(_, s)| s.node_count()).max().unwrap_or(0);
    let config = benchmark_config(&args, max_nodes);

    println!("Temporal grid — {} windows per sequence\n", args.windows);
    for d in TemporalDataset::ALL {
        let events = d.events(args.seed);
        let times: Vec<u64> = events.events.iter().map(|&(_, _, t)| t).collect();
        let hist = inter_event_time_histogram(&times);
        let head: Vec<String> = hist.iter().take(6).map(|c| c.to_string()).collect();
        println!(
            "{:<16} {:>5} nodes, {:>6} events; inter-event-time histogram head: [{}]",
            d.name(),
            d.nodes(),
            events.events.len(),
            head.join(", ")
        );
    }

    eprintln!(
        "\nrunning {} mechanisms x {} sequences x {} budgets x {} reps ...",
        algorithms.len(),
        datasets.len(),
        config.epsilons.len(),
        config.repetitions,
    );
    let start = std::time::Instant::now();
    let results = run_temporal_benchmark(&algorithms, &datasets, &config);
    eprintln!("completed in {:.1}s\n", start.elapsed().as_secs_f64());

    // Per-mechanism summary: mean error over window rows, mean drift.
    println!(
        "\n{:<10} {:<16} {:>8} {:>14} {:>14}",
        "mechanism", "sequence", "eps", "mean window", "mean drift"
    );
    for (di, ds) in results.datasets.iter().enumerate() {
        for algo in &results.algorithms {
            for &eps in &results.epsilons {
                let rows: Vec<_> = results
                    .outcomes
                    .iter()
                    .filter(|o| {
                        &o.algorithm == algo
                            && &o.dataset == ds
                            && (o.epsilon - eps).abs() < 1e-12
                            && o.runs > 0
                            && o.mean_error.is_finite()
                    })
                    .collect();
                let mean = |window: bool| {
                    let vals: Vec<f64> = rows
                        .iter()
                        .filter(|o| o.window.is_some() == window)
                        .map(|o| o.mean_error)
                        .collect();
                    vals.iter().sum::<f64>() / vals.len().max(1) as f64
                };
                println!(
                    "{:<10} {:<16} {:>8.2} {:>14.4e} {:>14.4e}",
                    algo,
                    ds,
                    eps,
                    mean(true),
                    mean(false)
                );
            }
        }
        let _ = di;
    }

    let csv_path = std::path::Path::new("target").join("temporal_grid_raw.csv");
    match std::fs::write(&csv_path, results.to_csv()) {
        Ok(()) => eprintln!("\nraw errors written to {}", csv_path.display()),
        Err(e) => {
            eprintln!("temporal_grid: writing {}: {e}", csv_path.display());
            std::process::exit(1);
        }
    }
}
