//! Regenerates **Table VI**: the statistics of the 8 benchmark datasets
//! (node count, edge count, average clustering coefficient, type), plus
//! the paper's target values for comparison.

use pgb_bench::HarnessArgs;
use pgb_core::benchmark::TextTable;
use pgb_datasets::Dataset;
use pgb_queries::clustering::average_clustering;

fn main() {
    let args = HarnessArgs::from_env();
    println!("Table VI — dataset statistics (measured vs paper targets)\n");
    let mut table =
        TextTable::new(["Graph", "|V|", "|E|", "|E| target", "ACC", "ACC target", "Type"]);
    for d in Dataset::TABLE_VI {
        let g = d.generate(args.seed);
        let t = d.target();
        table.add_row([
            d.name().to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            t.edges.to_string(),
            format!("{:.4}", average_clustering(&g)),
            format!("{:.4}", t.acc),
            format!("{:?}", t.graph_type),
        ]);
    }
    println!("{}", table.render());
}
