//! Regenerates **Table IX**: wall-clock time (seconds) of one generation
//! per algorithm × dataset at ε = 1 (the paper's cost experiment).
//!
//! Absolute numbers differ from the paper's (Rust vs Python, different
//! hardware); the comparison of interest is the *relative* ordering:
//! degree-based algorithms fastest, PrivSKG / PrivHRG slowest.

use pgb_bench::{load_datasets, suite, timing, HarnessArgs};
use pgb_core::benchmark::TextTable;

fn main() {
    let args = HarnessArgs::from_env();
    let datasets = load_datasets(args.seed);
    let algorithms = suite();
    println!("Table IX — generation time (seconds), ε = 1\n");
    let mut headers = vec!["Graph".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name().to_string()));
    let mut table = TextTable::new(headers);
    for (name, graph) in &datasets {
        eprintln!("timing on {name} ({} nodes)...", graph.node_count());
        let mut row = vec![name.clone()];
        for algo in &algorithms {
            let (_, secs) = timing::time_once(algo.as_ref(), graph, 1.0, args.seed);
            row.push(timing::format_seconds(secs));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
}
