//! Regenerates **Table VII**: the Definition 5 best-performance counts —
//! for every (dataset, ε) pair, how often each algorithm achieves the
//! lowest error across the 15 queries. The same grid also yields
//! **Table XII** (Definition 6), which is printed afterwards so the
//! expensive experiment runs once.
//!
//! This is the paper's headline experiment (6 algorithms × 8 datasets ×
//! 6 ε × 15 queries). `--scale paper` reproduces the full 10-repetition
//! protocol; the default `small` scale runs the identical grid at 2
//! repetitions.

use pgb_bench::{benchmark_config, load_datasets, suite, HarnessArgs};
use pgb_core::benchmark::report::{render_table12, render_table7};
use pgb_core::benchmark::run_benchmark;

fn main() {
    let args = HarnessArgs::from_env();
    let datasets = load_datasets(args.seed);
    let max_nodes = datasets.iter().map(|(_, g)| g.node_count()).max().unwrap_or(0);
    let config = benchmark_config(&args, max_nodes);
    let algorithms = suite();
    eprintln!(
        "running {} algorithms x {} datasets x {} budgets x {} reps ({} evaluation) ...",
        algorithms.len(),
        datasets.len(),
        config.epsilons.len(),
        config.repetitions,
        config.query_params.eval.name()
    );
    let start = std::time::Instant::now();
    let results = run_benchmark(&algorithms, &datasets, &config);
    eprintln!("completed in {:.1}s\n", start.elapsed().as_secs_f64());
    println!("Table VII — best-performance counts C_A(G, ε) over 15 queries\n");
    println!("{}", render_table7(&results));
    println!("Table XII — best-performance counts C_A(Q) over 8 datasets x 6 budgets\n");
    println!("{}", render_table12(&results));
    // Raw per-cell errors for downstream analysis. A failed write is a
    // failed run: CI consumes this CSV, so it must not vanish silently.
    let csv_path = std::path::Path::new("target").join("table7_raw.csv");
    match std::fs::write(&csv_path, results.to_csv()) {
        Ok(()) => eprintln!("raw errors written to {}", csv_path.display()),
        Err(e) => {
            eprintln!("table7: writing {}: {e}", csv_path.display());
            std::process::exit(1);
        }
    }
}
