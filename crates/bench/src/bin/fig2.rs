//! Regenerates **Fig. 2**: the end-to-end error curves — five queries
//! (triangle RE, degree-distribution KL, diameter RE, community-detection
//! NMI, eigenvector-centrality MAE) on four datasets (Facebook, CA-HepPh,
//! Gnutella, ER graph) across the six privacy budgets, one series per
//! algorithm.
//!
//! The output is one text table per (query, dataset) panel, in the same
//! row/column layout as the figure. Note the CD panel prints `1 − NMI`
//! (lower is better) to match the benchmark's uniform orientation.

use pgb_bench::{benchmark_config, suite, HarnessArgs};
use pgb_core::benchmark::report::render_series;
use pgb_core::benchmark::run_benchmark;
use pgb_datasets::Dataset;
use pgb_queries::Query;

fn main() {
    let args = HarnessArgs::from_env();
    let datasets: Vec<(String, pgb_graph::Graph)> =
        [Dataset::Facebook, Dataset::CaHepPh, Dataset::Gnutella, Dataset::ErGraph]
            .iter()
            .map(|d| (d.name().to_string(), d.generate(args.seed)))
            .collect();
    let max_nodes = datasets.iter().map(|(_, g)| g.node_count()).max().unwrap_or(0);
    let mut config = benchmark_config(&args, max_nodes);
    config.queries = vec![
        Query::Triangles,
        Query::DegreeDistribution,
        Query::Diameter,
        Query::CommunityDetection,
        Query::EigenvectorCentrality,
    ];
    let algorithms = suite();
    eprintln!("running Fig. 2 grid ({} reps per cell)...", config.repetitions);
    let start = std::time::Instant::now();
    let results = run_benchmark(&algorithms, &datasets, &config);
    eprintln!("completed in {:.1}s\n", start.elapsed().as_secs_f64());

    for &query in &config.queries {
        let metric = pgb_core::benchmark::metric_for(query).name();
        for (name, _) in &datasets {
            println!("Fig. 2 panel — {} ({metric}) on {name}", query.symbol());
            println!("{}", render_series(&results, name, query));
        }
    }
}
