//! Regenerates **Fig. 7** (appendix C): DER compared against TmF and
//! PrivGraph — clustering-coefficient RE and diameter RE on Facebook and
//! Wiki-Vote across the six privacy budgets. The paper's takeaway: DER
//! generally trails the two newer mechanisms.

use pgb_bench::{benchmark_config, HarnessArgs};
use pgb_core::benchmark::report::render_series;
use pgb_core::benchmark::run_benchmark;
use pgb_core::{Der, GraphGenerator, PrivGraph, TmF};
use pgb_datasets::Dataset;
use pgb_queries::Query;

fn main() {
    let args = HarnessArgs::from_env();
    let datasets: Vec<(String, pgb_graph::Graph)> = [Dataset::Facebook, Dataset::WikiVote]
        .iter()
        .map(|d| (d.name().to_string(), d.generate(args.seed)))
        .collect();
    let max_nodes = datasets.iter().map(|(_, g)| g.node_count()).max().unwrap_or(0);
    let mut config = benchmark_config(&args, max_nodes);
    config.queries = vec![Query::AverageClustering, Query::Diameter];
    let algorithms: Vec<Box<dyn GraphGenerator>> =
        vec![Box::new(TmF::default()), Box::new(PrivGraph::default()), Box::new(Der::default())];
    eprintln!("running Fig. 7 grid ({} reps per cell)...", config.repetitions);
    let start = std::time::Instant::now();
    let results = run_benchmark(&algorithms, &datasets, &config);
    eprintln!("completed in {:.1}s\n", start.elapsed().as_secs_f64());

    for &query in &config.queries {
        for (name, _) in &datasets {
            println!("Fig. 7 panel — {} RE on {name}", query.symbol());
            println!("{}", render_series(&results, name, query));
        }
    }
    println!("Expected shape (appendix C): DER exhibits generally higher error");
    println!("than TmF and PrivGraph across budgets.");
}
