//! Regenerates **Table XII** (appendix B): the Definition 6 best counts —
//! for every query, how often each algorithm achieves the lowest error
//! over the 8 datasets × 6 privacy budgets.

use pgb_bench::{benchmark_config, load_datasets, suite, HarnessArgs};
use pgb_core::benchmark::report::render_table12;
use pgb_core::benchmark::run_benchmark;

fn main() {
    let args = HarnessArgs::from_env();
    let datasets = load_datasets(args.seed);
    let max_nodes = datasets.iter().map(|(_, g)| g.node_count()).max().unwrap_or(0);
    let config = benchmark_config(&args, max_nodes);
    let algorithms = suite();
    eprintln!(
        "running {} algorithms x {} datasets x {} budgets x {} reps ...",
        algorithms.len(),
        datasets.len(),
        config.epsilons.len(),
        config.repetitions
    );
    let start = std::time::Instant::now();
    let results = run_benchmark(&algorithms, &datasets, &config);
    eprintln!("completed in {:.1}s\n", start.elapsed().as_secs_f64());
    println!("Table XII — best-performance counts C_A(Q) over 8 datasets x 6 budgets\n");
    println!("{}", render_table12(&results));
}
