//! Shared experiment setup: datasets, the algorithm suite, and the
//! benchmark configuration derived from the CLI arguments.

use crate::cli::HarnessArgs;
use pgb_core::benchmark::BenchmarkConfig;
use pgb_core::temporal::TemporalGenerator;
use pgb_core::GraphGenerator;
use pgb_datasets::temporal::TemporalDataset;
use pgb_datasets::Dataset;
use pgb_graph::temporal::SnapshotSequence;
use pgb_graph::Graph;
use pgb_queries::{PathMode, QueryParams};

/// Loads the 8 Table VI datasets, generated deterministically from the
/// harness seed.
pub fn load_datasets(seed: u64) -> Vec<(String, Graph)> {
    Dataset::TABLE_VI.iter().map(|d| (d.name().to_string(), d.generate(seed))).collect()
}

/// Loads the temporal event logs, windowed into `windows` snapshots each.
pub fn load_temporal_datasets(seed: u64, windows: usize) -> Vec<(String, SnapshotSequence)> {
    TemporalDataset::ALL
        .iter()
        .map(|d| {
            let seq = d
                .events(seed)
                .snapshots(windows)
                .expect("temporal stand-ins have valid node ranges");
            (d.name().to_string(), seq)
        })
        .collect()
}

/// The paper's six-algorithm suite (Table V).
pub fn suite() -> Vec<Box<dyn GraphGenerator>> {
    pgb_core::standard_suite()
}

/// The temporal mechanism suite, with the harness's `--window-eps`
/// weights applied (empty ⇒ even split).
pub fn temporal_suite_for(args: &HarnessArgs) -> Vec<TemporalGenerator> {
    pgb_core::temporal_suite()
        .into_iter()
        .map(|g| {
            if args.window_eps.is_empty() {
                g
            } else {
                g.with_window_weights(args.window_eps.clone())
            }
        })
        .collect()
}

/// Node count above which path queries switch to sampled BFS (see
/// DESIGN.md's substitution table).
const EXACT_BFS_LIMIT: usize = 5_000;

/// Query parameters for a dataset of `n` nodes.
pub fn query_params_for(n: usize) -> QueryParams {
    QueryParams {
        path_mode: if n <= EXACT_BFS_LIMIT {
            PathMode::Exact
        } else {
            PathMode::Sampled { sources: 64 }
        },
        ..QueryParams::default()
    }
}

/// A benchmark configuration following the paper's protocol (ε grid
/// {0.1, 0.5, 1, 2, 5, 10}, all 15 queries), scaled by the harness
/// arguments. `max_nodes` is the largest dataset in play, deciding the
/// BFS mode; `--eval approx` swaps the suite's shared intermediates for
/// their sketch-backed estimators.
pub fn benchmark_config(args: &HarnessArgs, max_nodes: usize) -> BenchmarkConfig {
    BenchmarkConfig {
        epsilons: vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0],
        repetitions: args.repetitions(),
        query_params: QueryParams { eval: args.eval, ..query_params_for(max_nodes) },
        seed: args.seed,
        threads: args.threads,
        sched: args.sched,
        reuse: args.reuse,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_load_all_eight() {
        let ds = load_datasets(0);
        assert_eq!(ds.len(), 8);
        assert_eq!(ds[0].0, "Minnesota");
        assert!(ds.iter().all(|(_, g)| g.node_count() > 0));
    }

    #[test]
    fn suite_has_six_algorithms() {
        let s = suite();
        assert_eq!(s.len(), 6);
        let names: Vec<&str> = s.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["DP-dK", "TmF", "PrivSKG", "PrivHRG", "PrivGraph", "DGG"]);
    }

    #[test]
    fn query_params_switch_to_sampling() {
        assert_eq!(query_params_for(100).path_mode, PathMode::Exact);
        assert!(matches!(query_params_for(20_000).path_mode, PathMode::Sampled { .. }));
    }

    #[test]
    fn config_follows_args() {
        let args = HarnessArgs { seed: 7, ..Default::default() };
        let c = benchmark_config(&args, 100);
        assert_eq!(c.epsilons, vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0]);
        assert_eq!(c.repetitions, 2);
        assert_eq!(c.seed, 7);
        assert_eq!(c.queries.len(), 15);
        assert_eq!(c.sched, pgb_core::benchmark::Scheduler::Elastic);
    }

    #[test]
    fn config_propagates_sched_escape_hatch() {
        use pgb_core::benchmark::Scheduler;
        let args = HarnessArgs { sched: Scheduler::Static, ..Default::default() };
        assert_eq!(benchmark_config(&args, 100).sched, Scheduler::Static);
    }

    #[test]
    fn config_propagates_eval_mode() {
        use pgb_queries::{ApproxConfig, EvalMode};
        let args =
            HarnessArgs { eval: EvalMode::Approx(ApproxConfig::default()), ..Default::default() };
        assert_eq!(
            benchmark_config(&args, 100).query_params.eval,
            EvalMode::Approx(ApproxConfig::default())
        );
        assert_eq!(
            benchmark_config(&HarnessArgs::default(), 100).query_params.eval,
            EvalMode::Exact
        );
        // The eval axis must not disturb the BFS-mode decision.
        assert_eq!(benchmark_config(&args, 100).query_params.path_mode, PathMode::Exact);
    }

    #[test]
    fn temporal_datasets_load_and_window() {
        let ds = load_temporal_datasets(0, 4);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].0, "BA-growth");
        assert!(ds.iter().all(|(_, seq)| seq.window_count() == 4));
        // Deterministic in the harness seed.
        let again = load_temporal_datasets(0, 4);
        assert_eq!(ds[0].1.snapshot(0).csr(), again[0].1.snapshot(0).csr());
    }

    #[test]
    fn temporal_suite_applies_window_weights() {
        let args = HarnessArgs::default();
        let names: Vec<&str> = temporal_suite_for(&args).iter().map(|g| g.name()).collect();
        assert_eq!(names, ["TmF", "DGG"]);
        // Weighted suites still build (the weight/window match is checked
        // at measure time against the actual sequence).
        let args = HarnessArgs { windows: 2, window_eps: vec![3.0, 1.0], ..Default::default() };
        assert_eq!(temporal_suite_for(&args).len(), 2);
    }

    #[test]
    fn config_propagates_measure_reuse() {
        use pgb_core::benchmark::MeasureReuse;
        let args = HarnessArgs { reuse: MeasureReuse::PerCell, ..Default::default() };
        assert_eq!(benchmark_config(&args, 100).reuse, MeasureReuse::PerCell);
        assert_eq!(benchmark_config(&HarnessArgs::default(), 100).reuse, MeasureReuse::PerRep);
    }
}
