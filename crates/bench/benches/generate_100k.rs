//! Intra-cell parallelism speedup on generation-phase-dominated workloads
//! (the paper's Table IX cost profile): the TmF-class generators on a
//! 10⁵-node graph, swept over `pgb_core::par` thread budgets.
//!
//! Run with `cargo bench --bench generate_100k`. Output is byte-identical
//! across the thread sweep (the derived-stream chunking discipline); the
//! interesting number is the wall-clock ratio between `threads=1` and
//! `threads=8` on a multi-core machine — TmF's perturbation/construction
//! phase is embarrassingly parallel, so it should approach the core count.
//! PrivSKG, PrivGraph, and DER run on smaller inputs to keep total bench
//! time sane (DER's quadtree descent is the quadratic outlier, exactly as
//! in the paper's cost discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgb_core::{par, Der, GraphGenerator, PrivGraph, PrivSkg, TmF};
use pgb_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread budgets the generators are swept over.
const THREADS: [usize; 3] = [1, 2, 8];

fn sweep(group: &mut criterion::BenchmarkGroup<'_>, algo: &dyn GraphGenerator, g: &Graph) {
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new(algo.name(), format!("threads={threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    par::with_parallelism(threads, || {
                        let mut rng = StdRng::seed_from_u64(1);
                        algo.generate(g, 2.0, &mut rng).expect("valid inputs")
                    })
                })
            },
        );
    }
}

fn bench_generate_100k(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(100);
    // 10⁵ nodes, ~5·10⁵ edges: the scale where TmF's O(m + m̃) scan and
    // the builder's sort/dedup dominate a benchmark cell.
    let big = pgb_models::barabasi_albert(100_000, 5, &mut rng);
    let mut group = c.benchmark_group("generate_100k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(800));
    sweep(&mut group, &TmF::default(), &big);
    group.finish();

    let privskg_input = pgb_models::barabasi_albert(32_768, 5, &mut rng);
    let privgraph_input = pgb_models::barabasi_albert(20_000, 5, &mut rng);
    let der_input = pgb_models::barabasi_albert(10_000, 5, &mut rng);
    let mut group = c.benchmark_group("generate_mid");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(800));
    sweep(&mut group, &PrivSkg::default(), &privskg_input);
    sweep(&mut group, &PrivGraph::default(), &privgraph_input);
    sweep(&mut group, &Der::default(), &der_input);
    group.finish();
}

criterion_group!(benches, bench_generate_100k);
criterion_main!(benches);
