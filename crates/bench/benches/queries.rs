//! Criterion micro-benchmarks for the 15 benchmark queries: the per-query
//! cost profile on a 1000-node graph, plus the suite-evaluator comparison —
//! all 15 queries evaluated independently vs through
//! [`QuerySuite::evaluate_all`]'s shared passes — on a 10⁴-node
//! Barabási–Albert graph (the scale where the harness switches to sampled
//! BFS).

use criterion::{criterion_group, criterion_main, Criterion};
use pgb_queries::{PathMode, Query, QueryParams, QuerySuite};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_queries(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let g = pgb_models::erdos_renyi_gnp(1_000, 0.01, &mut rng);
    let params = QueryParams::default();
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for q in Query::ALL {
        group.bench_function(q.symbol(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                q.evaluate(&g, &params, &mut rng)
            })
        });
    }
    // The sampled-BFS estimator the harness switches to on large graphs.
    let sampled = QueryParams { path_mode: PathMode::Sampled { sources: 64 }, ..params };
    group.bench_function("l_avg/sampled64", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            Query::AveragePathLength.evaluate(&g, &sampled, &mut rng)
        })
    });
    group.finish();
}

/// All-15-query evaluation on a 10⁴-node BA graph: independent per-query
/// calls rerun the BFS sweep three times (Q7–Q9), the triangle pass three
/// times (Q3/Q10/Q11), and Louvain twice (Q12/Q13); `evaluate_all` runs
/// each shared pass once. The gap between the two numbers is the
/// amortisation the benchmark runner banks on every synthetic graph.
fn bench_suite_vs_per_query(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let g = pgb_models::barabasi_albert(10_000, 5, &mut rng);
    // Sampled BFS — the path mode the harness uses at this scale.
    let params =
        QueryParams { path_mode: PathMode::Sampled { sources: 64 }, ..QueryParams::default() };
    let mut group = c.benchmark_group("suite_10k_ba");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("per_query/all15", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            Query::ALL.iter().map(|q| q.evaluate(&g, &params, &mut rng)).collect::<Vec<_>>()
        })
    });
    group.bench_function("evaluate_all/all15", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_suite_vs_per_query);
criterion_main!(benches);
