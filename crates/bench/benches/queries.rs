//! Criterion micro-benchmarks for the 15 benchmark queries on a 1000-node
//! graph — the per-query cost profile behind the harness's evaluation
//! loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pgb_queries::{PathMode, Query, QueryParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_queries(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let g = pgb_models::erdos_renyi_gnp(1_000, 0.01, &mut rng);
    let params = QueryParams::default();
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for q in Query::ALL {
        group.bench_function(q.symbol(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                q.evaluate(&g, &params, &mut rng)
            })
        });
    }
    // The sampled-BFS estimator the harness switches to on large graphs.
    let sampled = QueryParams { path_mode: PathMode::Sampled { sources: 64 }, ..params };
    group.bench_function("l_avg/sampled64", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            Query::AveragePathLength.evaluate(&g, &sampled, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
