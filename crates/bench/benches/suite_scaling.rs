//! Query-suite evaluation scaling: the shared passes of
//! [`QuerySuite::evaluate_all`] (degree histogram, triangle pass via the
//! degree-ordered forward orientation, BFS sweep, Louvain scans) are
//! chunked on `pgb-par` and pick up the ambient thread budget, so on
//! multi-core hardware `evaluate_all` on a large graph should scale with
//! `threads`; on a single core the >1 budgets pay only thread-spawn
//! oversubscription, so the sweep should stay within ~5% of the 1-thread
//! run (measured: 2.71 s / 2.86 s / 2.72 s at threads 1 / 2 / 8 on this
//! 1-core container).
//!
//! Run with `cargo bench --bench suite_scaling`. Two groups:
//!
//! * `suite_scaling` — the full 15-query suite on a 10⁵-node
//!   Barabási–Albert graph (sampled BFS, the harness' mode at this scale)
//!   at thread budgets {1, 2, 8}.
//! * `suite_seq_overhead` — each parallelised pass at a 1-thread budget
//!   vs its pre-refactor sequential reference (`counting::seq`,
//!   `path_stats_seq`, `degree_histogram_seq`) on the same graph. The
//!   1-thread budget takes `par_fold_chunks`' single-accumulator inline
//!   path, so the measured overhead must stay ≤ 5% (the PR 3/4
//!   discipline; measured on this container: BFS ≈ 0.1%, degree histogram
//!   ≈ 1% — and the triangle comparison also folds in the degree-ordered
//!   orientation, which *wins* on skewed graphs: ~2.5× faster than the
//!   id-ordered reference on the BA graph, threads or no threads).
//!
//! * `suite_eval_mode` — Exact vs Approx (`EvalMode`) evaluation of the
//!   eight sketch-backed queries (Q3, Q5–Q11) on a 10⁶-node BA graph at a
//!   1-thread budget, the acceptance measurement for the sketch layer
//!   (target: Approx ≥ 5× faster; the mode-independent queries Q12–Q15 do
//!   identical work under both modes, so including them would measure the
//!   shared baseline, not the axis). The graph is built through
//!   `GraphBuilder::build_streaming` — no unsorted edge list — and its CSR
//!   `heap_bytes` footprint is printed alongside. Set
//!   `PGB_SUITE_SCALING_HUGE=1` to add the 10⁷-node Approx-only cell
//!   (at the default p = 4 the sweep's two register arrays stay at
//!   2 × 160 MB; there is no Exact comparison at that scale — that is
//!   the point).
//!   Measured numbers are recorded in `BENCH_SUITE_SCALING.json` at the
//!   repo root.
//!
//! Byte-identity across the budgets is enforced by tests
//! (`crates/queries/tests/parallel.rs`); this bench only measures time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgb_queries::counting::{self, triangles_per_node};
use pgb_queries::path::{path_stats, path_stats_seq};
use pgb_queries::{ApproxConfig, EvalMode, PathMode, Query, QueryParams, QuerySuite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The queries whose shared intermediates the `EvalMode` axis replaces:
/// Q3 (triangles), Q5/Q6 (degree histogram), Q7–Q9 (distance sweep),
/// Q10/Q11 (clustering).
const SKETCH_QUERIES: [Query; 8] = [
    Query::Triangles,
    Query::DegreeVariance,
    Query::DegreeDistribution,
    Query::Diameter,
    Query::AveragePathLength,
    Query::DistanceDistribution,
    Query::GlobalClustering,
    Query::AverageClustering,
];

fn bench_suite_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let g = pgb_models::barabasi_albert(100_000, 4, &mut rng);
    let params =
        QueryParams { path_mode: PathMode::Sampled { sources: 64 }, ..QueryParams::default() };
    let mut group = c.benchmark_group("suite_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.warm_up_time(Duration::from_millis(800));
    for threads in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("evaluate_all_100k_ba", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    pgb_par::with_parallelism(threads, || {
                        let mut rng = StdRng::seed_from_u64(5);
                        QuerySuite::evaluate_all(&g, &Query::ALL, &params, &mut rng)
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_seq_overhead(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let g = pgb_models::barabasi_albert(100_000, 4, &mut rng);
    let mut group = c.benchmark_group("suite_seq_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_millis(800));

    group.bench_function("triangles/seq", |b| b.iter(|| counting::seq::triangles_per_node(&g)));
    group.bench_function("triangles/par1", |b| {
        b.iter(|| pgb_par::with_parallelism(1, || triangles_per_node(&g)))
    });

    let mode = PathMode::Sampled { sources: 64 };
    group.bench_function("bfs64/seq", |b| {
        b.iter(|| path_stats_seq(&g, mode, &mut StdRng::seed_from_u64(5)))
    });
    group.bench_function("bfs64/par1", |b| {
        b.iter(|| {
            pgb_par::with_parallelism(1, || path_stats(&g, mode, &mut StdRng::seed_from_u64(5)))
        })
    });

    group.bench_function("degree_hist/seq", |b| {
        b.iter(|| pgb_graph::degree::degree_histogram_seq(&g))
    });
    group.bench_function("degree_hist/par1", |b| {
        b.iter(|| pgb_par::with_parallelism(1, || pgb_graph::degree::degree_histogram(&g)))
    });
    group.finish();
}

fn bench_eval_modes(c: &mut Criterion) {
    // Streaming build: the 8M-edge BA stream is counting-sorted straight
    // into CSR, never holding the unsorted pair list.
    let mut rng = StdRng::seed_from_u64(17);
    let g = pgb_models::ba::barabasi_albert_streaming(1_000_000, 4, &mut rng);
    eprintln!(
        "10^6-node BA graph: {} edges, CSR heap_bytes = {} ({:.1} MB)",
        g.edge_count(),
        g.heap_bytes(),
        g.heap_bytes() as f64 / (1024.0 * 1024.0)
    );
    let exact =
        QueryParams { path_mode: PathMode::Sampled { sources: 64 }, ..QueryParams::default() };
    let approx = QueryParams { eval: EvalMode::Approx(ApproxConfig::default()), ..exact };

    let mut group = c.benchmark_group("suite_eval_mode");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    group.warm_up_time(Duration::from_secs(1));
    for (name, params) in [("exact_1m_t1", exact), ("approx_1m_t1", approx)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                pgb_par::with_parallelism(1, || {
                    let mut rng = StdRng::seed_from_u64(5);
                    QuerySuite::evaluate_all(&g, &SKETCH_QUERIES, &params, &mut rng)
                })
            })
        });
    }
    drop(g);

    if std::env::var_os("PGB_SUITE_SCALING_HUGE").is_some() {
        // 10⁷ nodes: the default HLL precision (p = 4) keeps the sweep's
        // two register arrays at 2 × 160 MB next to the ~450 MB CSR.
        let mut rng = StdRng::seed_from_u64(18);
        let g = pgb_models::ba::barabasi_albert_streaming(10_000_000, 4, &mut rng);
        eprintln!(
            "10^7-node BA graph: {} edges, CSR heap_bytes = {} ({:.1} MB)",
            g.edge_count(),
            g.heap_bytes(),
            g.heap_bytes() as f64 / (1024.0 * 1024.0)
        );
        let params = QueryParams { eval: EvalMode::Approx(ApproxConfig::default()), ..exact };
        group.bench_function("approx_10m_t1", |b| {
            b.iter(|| {
                pgb_par::with_parallelism(1, || {
                    let mut rng = StdRng::seed_from_u64(5);
                    QuerySuite::evaluate_all(&g, &SKETCH_QUERIES, &params, &mut rng)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite_scaling, bench_seq_overhead, bench_eval_modes);
criterion_main!(benches);
