//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * TmF's linear-cost high-pass filter vs materialising the noisy matrix;
//! * PrivGraph's exponential-mechanism community adjustment on vs off;
//! * DP-dK's smooth sensitivity vs global sensitivity (noise magnitude);
//! * PrivHRG's MCMC chain length;
//! * exact vs sampled BFS for the path queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgb_core::{DpDk, GraphGenerator, PrivGraph, PrivHrg, TmF};
use pgb_dp::laplace::sample_laplace;
use pgb_graph::Graph;
use pgb_queries::{path::path_stats, PathMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_graph(n: usize, p: f64) -> Graph {
    let mut rng = StdRng::seed_from_u64(13);
    pgb_models::erdos_renyi_gnp(n, p, &mut rng)
}

/// The naive TmF baseline: materialise every noisy cell, sort, take the
/// top m̃ — the O(n² log n) approach the high-pass filter avoids.
fn tmf_naive(g: &Graph, epsilon: f64, rng: &mut StdRng) -> Graph {
    let n = g.node_count();
    let eps1 = 0.9 * epsilon;
    let eps2 = 0.1 * epsilon;
    let m_tilde =
        (g.edge_count() as f64 + sample_laplace(1.0 / eps2, rng)).round().max(0.0) as usize;
    let mut cells: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let truth = if g.has_edge(u, v) { 1.0 } else { 0.0 };
            cells.push((truth + sample_laplace(1.0 / eps1, rng), u, v));
        }
    }
    cells.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    cells.truncate(m_tilde);
    Graph::from_edges(n, cells.into_iter().map(|(_, u, v)| (u, v))).expect("ids in range")
}

fn ablation_tmf(c: &mut Criterion) {
    let g = test_graph(500, 0.02);
    let mut group = c.benchmark_group("ablation_tmf");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("high_pass_filter", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            TmF::default().generate(&g, 1.0, &mut rng).expect("valid")
        })
    });
    group.bench_function("naive_full_matrix", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            tmf_naive(&g, 1.0, &mut rng)
        })
    });
    group.finish();
}

fn ablation_privgraph(c: &mut Criterion) {
    let g = test_graph(800, 0.02);
    let mut group = c.benchmark_group("ablation_privgraph");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for rounds in [0usize, 1, 3] {
        group.bench_with_input(BenchmarkId::new("refine_rounds", rounds), &rounds, |b, &rounds| {
            let gen = PrivGraph { refine_rounds: rounds, ..Default::default() };
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                gen.generate(&g, 1.0, &mut rng).expect("valid")
            })
        });
    }
    group.finish();
}

fn ablation_dpdk_sensitivity(c: &mut Criterion) {
    // Not a timing question but a utility one: measure the edge-count
    // error under smooth vs global sensitivity noise at the same ε.
    // Criterion still gives us a stable throughput comparison of the two
    // calibration paths.
    let g = test_graph(600, 0.03);
    let mut group = c.benchmark_group("ablation_dpdk");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("dk2_smooth_sensitivity", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            DpDk::default().generate(&g, 1.0, &mut rng).expect("valid")
        })
    });
    group.bench_function("dk1_global_sensitivity", |b| {
        let gen = DpDk { variant: pgb_core::DkVariant::Dk1, delta: 0.0 };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            gen.generate(&g, 1.0, &mut rng).expect("valid")
        })
    });
    group.finish();
}

fn ablation_privhrg_chain(c: &mut Criterion) {
    let g = test_graph(300, 0.04);
    let mut group = c.benchmark_group("ablation_privhrg");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for steps in [5_000usize, 20_000, 80_000] {
        group.bench_with_input(BenchmarkId::new("mcmc_steps", steps), &steps, |b, &steps| {
            let gen = PrivHrg {
                steps_per_node: usize::MAX / 4096,
                max_steps: steps,
                ..Default::default()
            };
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                gen.generate(&g, 1.0, &mut rng).expect("valid")
            })
        });
    }
    group.finish();
}

fn ablation_bfs(c: &mut Criterion) {
    let g = test_graph(3_000, 0.004);
    let mut group = c.benchmark_group("ablation_bfs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.bench_function("exact", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| path_stats(&g, PathMode::Exact, &mut rng))
    });
    for sources in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("sampled", sources), &sources, |b, &s| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| path_stats(&g, PathMode::Sampled { sources: s }, &mut rng))
        });
    }
    group.finish();
}

/// Sanity anchor: the ablations must compare like with like, so check the
/// naive TmF produces the same edge-count scale as the filter version.
fn ablation_consistency(c: &mut Criterion) {
    let g = test_graph(300, 0.03);
    let mut rng = StdRng::seed_from_u64(9);
    let fast = TmF::default().generate(&g, 5.0, &mut rng).expect("valid");
    let naive = tmf_naive(&g, 5.0, &mut rng);
    let (mf, mn) = (fast.edge_count() as f64, naive.edge_count() as f64);
    assert!(
        (mf - mn).abs() / mn.max(1.0) < 0.25,
        "filter {mf} vs naive {mn}: implementations diverged"
    );
    // A trivial bench so the group appears in reports.
    c.bench_function("ablation_consistency/noop", |b| b.iter(|| rng.gen::<u64>()));
}

criterion_group!(
    benches,
    ablation_tmf,
    ablation_privgraph,
    ablation_dpdk_sensitivity,
    ablation_privhrg_chain,
    ablation_bfs,
    ablation_consistency
);
criterion_main!(benches);
