//! Criterion micro-benchmarks for the DP mechanism primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use pgb_dp::exponential::{exponential_mechanism, exponential_mechanism_sparse};
use pgb_dp::geometric::sample_two_sided_geometric;
use pgb_dp::laplace::sample_laplace;
use pgb_dp::randomized_response::randomized_response;
use pgb_dp::sensitivity::{dk2_local_sensitivity_at, smooth_sensitivity};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));

    group.bench_function("laplace_sample", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sample_laplace(2.0, &mut rng))
    });

    group.bench_function("geometric_sample", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| sample_two_sided_geometric(0.5, &mut rng))
    });

    group.bench_function("randomized_response", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| randomized_response(true, 1.0, &mut rng))
    });

    let scores: Vec<f64> = (0..256).map(|i| (i % 17) as f64).collect();
    group.bench_function("exponential_256", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| exponential_mechanism(&scores, 1.0, 1.0, &mut rng))
    });

    let sparse: Vec<(usize, f64)> = (0..16).map(|i| (i * 1000, (i % 5) as f64)).collect();
    group.bench_function("exponential_sparse_16_of_100k", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| exponential_mechanism_sparse(&sparse, 100_000, 1.0, 1.0, &mut rng))
    });

    group.bench_function("smooth_sensitivity_dk2", |b| {
        b.iter(|| smooth_sensitivity(|k| dk2_local_sensitivity_at(500, k), 0.09, 20_000))
    });

    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
