//! Scheduler tail behaviour: the grid shape the elastic budget exists for.
//!
//! A grid of `available_parallelism() + 2` cells run with `threads =
//! available_parallelism()` leaves the static split's tail cells on a
//! 1-thread budget while the finished workers' threads idle; the elastic
//! ledger re-grants those threads per claimed (cell, repetition-block)
//! sub-task. Run with `cargo bench --bench sched_tail`: on multi-core
//! hardware `elastic` should be ≥ `static` in wall-clock (up to ~1.8× on
//! tail-heavy grids); on a single core the two should be within ~5% —
//! that overhead bound is what this bench records in CI-like containers.
//! Output is byte-identical between the modes either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgb_core::benchmark::{run_benchmark, BenchmarkConfig, Scheduler};
use pgb_core::{par, GraphGenerator, TmF};
use pgb_queries::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sched_tail(c: &mut Criterion) {
    let cores = par::available_parallelism();
    let mut rng = StdRng::seed_from_u64(3);
    // Meaty enough that a cell's generation + query pass dominates the
    // scheduling overhead being measured.
    let g = pgb_models::barabasi_albert(5_000, 4, &mut rng);
    let datasets = vec![("ba".to_string(), g)];
    let algorithms: Vec<Box<dyn GraphGenerator>> = vec![Box::new(TmF::default())];
    // One ε per cell: cores + 2 cells of one (dataset, algorithm) pair.
    let epsilons: Vec<f64> = (0..cores + 2).map(|i| 0.5 + 0.25 * i as f64).collect();

    let mut group = c.benchmark_group("sched_tail");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for sched in [Scheduler::Static, Scheduler::Elastic] {
        let config = BenchmarkConfig {
            epsilons: epsilons.clone(),
            repetitions: 2,
            queries: vec![Query::EdgeCount, Query::Triangles, Query::DegreeDistribution],
            seed: 3,
            threads: cores,
            sched,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("grid_cores_plus_2", sched.name()),
            &config,
            |b, config| b.iter(|| run_benchmark(&algorithms, &datasets, config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sched_tail);
criterion_main!(benches);
