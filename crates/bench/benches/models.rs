//! Criterion micro-benchmarks for the graph constructors (the
//! construction stage of Fig. 1).

use criterion::{criterion_group, criterion_main, Criterion};
use pgb_models::hrg::Dendrogram;
use pgb_models::{
    barabasi_albert, bter, chung_lu, configuration_model, erdos_renyi_gnp, havel_hakimi,
    watts_strogatz, BterParams, Initiator, KroneckerModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));

    group.bench_function("er_gnp_5k_p001", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| erdos_renyi_gnp(5_000, 0.01, &mut rng))
    });

    group.bench_function("ba_5k_m4", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| barabasi_albert(5_000, 4, &mut rng))
    });

    let weights: Vec<f64> = (0..5_000).map(|i| 2.0 + (i % 30) as f64).collect();
    group.bench_function("chung_lu_5k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| chung_lu(&weights, &mut rng))
    });

    let degrees: Vec<u32> = (0..5_000).map(|i| 2 + (i % 12) as u32).collect();
    group.bench_function("bter_5k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| bter(&degrees, &BterParams::default(), &mut rng))
    });

    group.bench_function("config_model_5k", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| configuration_model(&degrees, &mut rng))
    });

    group.bench_function("havel_hakimi_5k", |b| b.iter(|| havel_hakimi(&degrees)));

    group.bench_function("watts_strogatz_5k", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| watts_strogatz(5_000, 6, 0.1, &mut rng))
    });

    let skg = KroneckerModel { initiator: Initiator::new(0.9, 0.45, 0.25), k: 13 };
    group.bench_function("kronecker_fast_8k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| skg.sample_fast(&mut rng))
    });

    group.bench_function("hrg_mcmc_10k_steps", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        let g = erdos_renyi_gnp(500, 0.02, &mut rng);
        b.iter(|| {
            let mut d = Dendrogram::from_graph(&g, &mut rng);
            for _ in 0..10_000 {
                d.mcmc_step(&g, 1.0, &mut rng);
            }
            d
        })
    });

    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
