//! The two-phase split's economics: what a measurement costs, what a
//! re-sample costs, and how `--reuse cell` amortises the former.
//!
//! Three groups on a 10⁴-node Barabási–Albert graph:
//!
//! * `measure` / `sample` — the per-phase cost of each mechanism's
//!   pipeline, isolated: `measure` runs representation + perturbation
//!   (the ε-consuming phase), `sample` re-runs construction against one
//!   cached [`pgb_core::PrivateSynthesis`] intermediate. The gap between
//!   the two is the per-repetition saving measurement reuse buys.
//! * `amortized_per_sample` — the real runner on a one-cell grid under
//!   [`MeasureReuse::PerCell`] at reps ∈ {1, 4, 16}; throughput is in
//!   repetitions, so Criterion reports the *per-sample* cost, which falls
//!   toward the pure sample cost as the one measurement amortises.
//!
//! On startup the bench also prints each intermediate's `heap_bytes()`
//! estimate next to the live-heap delta observed by the counting
//! allocator, so the estimates stay honest.

#[global_allocator]
static ALLOC: pgb_bench::CountingAllocator = pgb_bench::CountingAllocator;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgb_bench::CountingAllocator;
use pgb_core::benchmark::{run_benchmark, BenchmarkConfig, MeasureReuse};
use pgb_core::{Dgg, DpDk, GraphGenerator, PrivGraph, TmF};
use pgb_queries::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mechanisms() -> Vec<Box<dyn GraphGenerator>> {
    // The suite minus the quadratic/MCMC heavyweights (DER, PrivHRG) and
    // PrivSKG's 0-byte initiator: enough spread to show the split's range
    // without hour-long bench runs at n = 10⁴.
    vec![
        Box::new(TmF::default()),
        Box::new(Dgg::default()),
        Box::new(DpDk::default()),
        Box::new(PrivGraph::default()),
    ]
}

fn bench_measure_reuse(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10);
    let g = pgb_models::barabasi_albert(10_000, 4, &mut rng);

    // heap_bytes sanity print: estimate vs the allocator's live delta
    // across the measurement (the delta includes the Box and struct
    // overhead the estimate deliberately omits).
    for algo in mechanisms() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = CountingAllocator::live();
        let m = algo.measure(&g, 1.0, &mut rng).expect("measure");
        let delta = CountingAllocator::live().saturating_sub(base);
        eprintln!(
            "{:<10} {:<32} heap_bytes = {:>10} B, live delta = {:>10} B",
            algo.name(),
            m.name(),
            m.heap_bytes(),
            delta
        );
    }

    let mut group = c.benchmark_group("two_phase_split");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for algo in mechanisms() {
        group.bench_with_input(BenchmarkId::new("measure", algo.name()), &algo, |b, algo| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(12);
                algo.measure(&g, 1.0, &mut rng).expect("measure")
            })
        });
        let mut rng = StdRng::seed_from_u64(12);
        let measured = algo.measure(&g, 1.0, &mut rng).expect("measure");
        group.bench_with_input(BenchmarkId::new("sample", algo.name()), &measured, |b, m| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(13);
                m.sample(&mut rng)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("amortized_per_sample");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let datasets = vec![("ba".to_string(), g.clone())];
    for algo in mechanisms() {
        let suite: Vec<Box<dyn GraphGenerator>> = match algo.name() {
            "TmF" => vec![Box::new(TmF::default())],
            "DGG" => vec![Box::new(Dgg::default())],
            "DP-dK" => vec![Box::new(DpDk::default())],
            _ => vec![Box::new(PrivGraph::default())],
        };
        for reps in [1usize, 4, 16] {
            let config = BenchmarkConfig {
                epsilons: vec![1.0],
                repetitions: reps,
                queries: vec![Query::EdgeCount],
                seed: 10,
                reuse: MeasureReuse::PerCell,
                ..Default::default()
            };
            group.throughput(Throughput::Elements(reps as u64));
            group.bench_with_input(BenchmarkId::new(algo.name(), reps), &config, |b, config| {
                b.iter(|| run_benchmark(&suite, &datasets, config))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_measure_reuse);
criterion_main!(benches);
