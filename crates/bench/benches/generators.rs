//! Criterion micro-benchmarks: one generation per algorithm on a
//! mid-sized community graph, across two privacy budgets. The relative
//! ordering backs the Table IX discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgb_core::{Dgg, DpDk, GraphGenerator, PrivGraph, PrivHrg, PrivSkg, TmF};
use pgb_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    // A 600-node graph with planted communities: representative of the
    // benchmark's structure without blowing up bench time.
    let mut edges = Vec::new();
    for c in 0..6u32 {
        let base = c * 100;
        for i in 0..100 {
            for j in (i + 1)..100 {
                if rand::Rng::gen_bool(&mut rng, 0.08) {
                    edges.push((base + i, base + j));
                }
            }
        }
    }
    for _ in 0..400 {
        let u = rand::Rng::gen_range(&mut rng, 0..600u32);
        let v = rand::Rng::gen_range(&mut rng, 0..600u32);
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    Graph::from_edges(600, edges).unwrap()
}

fn bench_generators(c: &mut Criterion) {
    let g = test_graph();
    let algorithms: Vec<Box<dyn GraphGenerator>> = vec![
        Box::new(DpDk::default()),
        Box::new(TmF::default()),
        Box::new(PrivSkg::default()),
        Box::new(PrivHrg { max_steps: 60_000, ..Default::default() }),
        Box::new(PrivGraph::default()),
        Box::new(Dgg::default()),
    ];
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(800));
    for algo in &algorithms {
        for eps in [0.5, 5.0] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("eps={eps}")),
                &eps,
                |b, &eps| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(1);
                        algo.generate(&g, eps, &mut rng).expect("valid inputs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
