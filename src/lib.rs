//! # PGB — Private Graph Benchmark
//!
//! A Rust reproduction of *"PGB: Benchmarking Differentially Private
//! Synthetic Graph Generation Algorithms"* (ICDE 2025). This meta-crate
//! re-exports the whole workspace so applications can depend on a single
//! crate:
//!
//! * [`par`] — the deterministic parallelism foundation (fixed chunking,
//!   derived RNG streams, scoped thread budgets, the elastic ledger).
//! * [`graph`] — undirected simple-graph substrate.
//! * [`dp`] — differential-privacy mechanisms and sensitivity machinery.
//! * [`models`] — classic random-graph constructors (ER, BA, Chung–Lu,
//!   BTER, dK-series, Kronecker, HRG, …).
//! * [`community`] — Louvain community detection and modularity.
//! * [`queries`] — the 15 graph queries of the benchmark (Table III/IV).
//! * [`metrics`] — the 11 error metrics (RE, KL, NMI, …).
//! * [`datasets`] — the 8 benchmark graphs of Table VI.
//! * [`core`] — the six DP generation algorithms plus the benchmark
//!   framework itself (the paper's contribution).
//! * [`serve`] — generation as a service: concurrent per-tenant budget
//!   accounting, the single-flight measurement cache, and deterministic
//!   request-log replay.

pub use pgb_community as community;
pub use pgb_core as core;
pub use pgb_datasets as datasets;
pub use pgb_dp as dp;
pub use pgb_graph as graph;
pub use pgb_metrics as metrics;
pub use pgb_models as models;
pub use pgb_par as par;
pub use pgb_queries as queries;
pub use pgb_serve as serve;

/// Convenience prelude pulling in the types most applications need.
pub mod prelude {
    pub use pgb_core::prelude::*;
    pub use pgb_datasets::Dataset;
    pub use pgb_graph::{Graph, GraphBuilder};
}
