//! Community-preservation study: how well does each mechanism retain the
//! community structure (the CD query, NMI metric) and modularity of a
//! social graph across privacy budgets?
//!
//! This reproduces the qualitative finding of §VI-B ("Community
//! Detection"): community-aware mechanisms (PrivGraph) hold up at
//! moderate ε, while matrix-noise mechanisms (TmF) only catch up at
//! large ε.
//!
//! ```bash
//! cargo run --release --example community_preservation
//! ```

use pgb::prelude::*;
use pgb_community::{louvain, modularity, LouvainParams};
use pgb_metrics::normalized_mutual_information;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let graph = Dataset::Facebook.generate(0);
    let mut rng = StdRng::seed_from_u64(7);
    let true_partition = louvain(&graph, &LouvainParams::default(), &mut rng);
    let true_modularity = modularity(&graph, &true_partition);
    println!(
        "Facebook stand-in: {} communities, modularity {:.3}\n",
        true_partition.community_count(),
        true_modularity
    );

    let algorithms: Vec<Box<dyn GraphGenerator>> =
        vec![Box::new(PrivGraph::default()), Box::new(TmF::default()), Box::new(Dgg::default())];
    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12}",
        "algorithm", "ε", "NMI", "modularity", "communities"
    );
    for algo in &algorithms {
        for eps in [0.5, 2.0, 10.0] {
            let mut gen_rng = StdRng::seed_from_u64(100 + eps as u64);
            let synthetic = algo.generate(&graph, eps, &mut gen_rng).expect("valid inputs");
            let partition = louvain(&synthetic, &LouvainParams::default(), &mut gen_rng);
            let q = modularity(&synthetic, &partition);
            // NMI needs aligned node sets; all three mechanisms preserve n.
            let nmi = if partition.len() == true_partition.len() {
                normalized_mutual_information(true_partition.labels(), partition.labels())
            } else {
                f64::NAN
            };
            println!(
                "{:<12} {:>6} {:>10.3} {:>12.3} {:>12}",
                algo.name(),
                eps,
                nmi,
                q,
                partition.community_count()
            );
        }
    }
    println!("\nExpected shape: PrivGraph's NMI leads at moderate ε; TmF needs");
    println!("ε = 10 before its noisy matrix retains enough structure.");
}
