//! Extending the benchmark with a *new* mechanism — the workflow PGB's
//! platform exists for: implement [`GraphGenerator::measure`] (the
//! ε-consuming representation + perturbation phase, returning a
//! [`PrivateSynthesis`] intermediate) and [`PrivateSynthesis::sample`]
//! (the ε-free construction phase), drop the mechanism into the suite,
//! and get comparable numbers against the built-ins — `generate` comes
//! for free as `measure` + one `sample`.
//!
//! The custom mechanism here is edge-flip randomized response, the
//! textbook Edge-DP baseline. The benchmark output makes the paper's
//! §IV-B "density problem" observation concrete: on a sparse graph RR
//! drowns in flipped zero-cells at small ε.
//!
//! ```bash
//! cargo run --release --example custom_algorithm
//! ```

use pgb::prelude::*;
use pgb_core::benchmark::report::render_series;
use pgb_core::benchmark::run_benchmark;
use pgb_core::GenerateError;
use pgb_dp::randomized_response::rr_flip_probability;
use pgb_graph::{Graph, GraphBuilder};
use pgb_models::sampling::sample_binomial;
use pgb_queries::Query;
use rand::RngCore;

/// Randomized response over the adjacency upper triangle: every true edge
/// survives w.p. `e^ε/(1+e^ε)`, every non-edge flips in w.p.
/// `1/(1+e^ε)`. Implemented sparsely (Binomial counts + sampling) so it
/// runs on benchmark-sized graphs.
struct RandomizedResponseGen;

/// RR's private intermediate *is* the flipped graph: unlike the compact
/// mechanisms (degree sequences, dendrograms, initiator matrices) its
/// construction phase has no randomness left to re-draw, so `measure`
/// performs the whole flip and `sample` clones the DP-protected result.
/// Re-sampling under `--reuse cell` therefore returns identical graphs —
/// still valid post-processing, just a degenerate sampler.
struct RrSynthesis {
    output: Graph,
    epsilon: f64,
}

impl PrivateSynthesis for RrSynthesis {
    fn name(&self) -> &'static str {
        "randomized-response adjacency"
    }

    fn epsilon_spent(&self) -> f64 {
        self.epsilon
    }

    fn heap_bytes(&self) -> usize {
        // CSR estimate: n + 1 offsets plus both directions of every edge.
        (self.output.node_count() + 1) * std::mem::size_of::<usize>()
            + 2 * self.output.edge_count() * std::mem::size_of::<u32>()
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> Graph {
        self.output.clone()
    }
}

impl GraphGenerator for RandomizedResponseGen {
    fn name(&self) -> &'static str {
        "EdgeRR"
    }

    fn measure(
        &self,
        graph: &Graph,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn PrivateSynthesis>, GenerateError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(GenerateError::InvalidEpsilon(epsilon));
        }
        let n = graph.node_count();
        if n < 2 {
            return Ok(Box::new(RrSynthesis { output: Graph::new(n), epsilon }));
        }
        let flip = rr_flip_probability(epsilon);
        let m = graph.edge_count() as u64;
        let zeros = n as u64 * (n as u64 - 1) / 2 - m;
        // Surviving true edges.
        let keep = sample_binomial(m, 1.0 - flip, rng) as usize;
        // Flipped-in non-edges.
        let flipped = sample_binomial(zeros, flip, rng) as usize;
        let mut b = GraphBuilder::with_capacity(n, keep + flipped);
        let mut edges = graph.edge_vec();
        for i in 0..keep {
            let j = (rng.next_u64() % (edges.len() - i) as u64) as usize + i;
            edges.swap(i, j);
            b.push(edges[i].0, edges[i].1);
        }
        let mut placed = 0;
        while placed < flipped {
            let (u, v) = pgb_models::sampling::random_pair(n, rng);
            if !graph.has_edge(u, v) {
                b.push(u, v);
                placed += 1;
            }
        }
        Ok(Box::new(RrSynthesis { output: b.build().expect("ids in range"), epsilon }))
    }
}

fn main() {
    let dataset = Dataset::Minnesota; // sparse: the worst case for RR
    let graph = dataset.generate(0);
    println!(
        "comparing EdgeRR against DGG and TmF on {} (density {:.5})\n",
        dataset.name(),
        graph.density()
    );

    let algorithms: Vec<Box<dyn GraphGenerator>> =
        vec![Box::new(RandomizedResponseGen), Box::new(Dgg::default()), Box::new(TmF::default())];
    let datasets = vec![(dataset.name().to_string(), graph)];
    let config = BenchmarkConfig {
        epsilons: vec![0.5, 2.0, 8.0],
        repetitions: 3,
        queries: vec![Query::EdgeCount, Query::AverageDegree],
        seed: 0,
        ..Default::default()
    };
    let results = run_benchmark(&algorithms, &datasets, &config);
    for query in [Query::EdgeCount, Query::AverageDegree] {
        println!("{} relative error vs ε:", query.symbol());
        println!("{}", render_series(&results, dataset.name(), query));
    }
    println!("The density problem in numbers: at ε = 0.5 EdgeRR inflates |E| by");
    println!("orders of magnitude, while the compact-representation mechanisms");
    println!("stay within a small factor — the reason none of the paper's six");
    println!("algorithms perturbs raw adjacency cells without a filter.");
}
