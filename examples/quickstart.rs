//! Quickstart: generate one differentially private synthetic graph and
//! compare a handful of statistics against the original.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pgb::prelude::*;
use pgb_queries::{Query, QueryParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Load a benchmark dataset (deterministic from a seed).
    let original = Dataset::Facebook.generate(0);
    println!("original: {} nodes, {} edges", original.node_count(), original.edge_count());

    // 2. Pick a mechanism and a privacy budget, and generate.
    let mut rng = StdRng::seed_from_u64(42);
    let epsilon = 1.0;
    let synthetic = PrivGraph::default()
        .generate(&original, epsilon, &mut rng)
        .expect("generation succeeds on valid inputs");
    println!(
        "synthetic (ε = {epsilon}): {} nodes, {} edges",
        synthetic.node_count(),
        synthetic.edge_count()
    );

    // 3. Compare utility on a few queries.
    let params = QueryParams::default();
    println!("\n{:<22} {:>12} {:>12} {:>8}", "query", "original", "synthetic", "error");
    for query in
        [Query::EdgeCount, Query::AverageDegree, Query::GlobalClustering, Query::Modularity]
    {
        let t = query.evaluate(&original, &params, &mut rng);
        let s = query.evaluate(&synthetic, &params, &mut rng);
        let err = pgb_core::benchmark::compute_error(query, &t, &s);
        let (tv, sv) = (t.as_scalar().unwrap_or(f64::NAN), s.as_scalar().unwrap_or(f64::NAN));
        println!("{:<22} {tv:>12.3} {sv:>12.3} {err:>8.3}", query.symbol());
    }
    println!("\n(errors are the benchmark's per-query metrics — RE here; lower is better)");
}
