//! A privacy-utility sweep: run three mechanisms across the paper's ε
//! grid on one dataset, printing the Fig.-2-style error series for two
//! queries.
//!
//! ```bash
//! cargo run --release --example epsilon_sweep
//! ```

use pgb::prelude::*;
use pgb_core::benchmark::report::render_series;
use pgb_core::benchmark::run_benchmark;
use pgb_queries::Query;

fn main() {
    let dataset = Dataset::WikiVote;
    let graph = dataset.generate(0);
    println!(
        "sweeping ε on {} ({} nodes, {} edges)\n",
        dataset.name(),
        graph.node_count(),
        graph.edge_count()
    );

    let algorithms: Vec<Box<dyn GraphGenerator>> =
        vec![Box::new(TmF::default()), Box::new(PrivGraph::default()), Box::new(Dgg::default())];
    let datasets = vec![(dataset.name().to_string(), graph)];
    let config = BenchmarkConfig {
        epsilons: vec![0.1, 0.5, 1.0, 2.0, 5.0, 10.0],
        repetitions: 3,
        queries: vec![Query::EdgeCount, Query::DegreeDistribution],
        query_params: pgb_queries::QueryParams {
            path_mode: pgb_queries::PathMode::Sampled { sources: 32 },
            ..Default::default()
        },
        seed: 0,
        threads: 0,
        ..Default::default()
    };
    let results = run_benchmark(&algorithms, &datasets, &config);

    for query in [Query::EdgeCount, Query::DegreeDistribution] {
        println!("{} ({}) vs ε:", query.symbol(), pgb_core::benchmark::metric_for(query).name());
        println!("{}", render_series(&results, dataset.name(), query));
    }
    println!("Expected: every curve trends downward as ε grows; TmF pins |E| tightly.");
}
